package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/design"
	"flashqos/internal/sampling"
	"flashqos/internal/trace"
)

func newConcurrent(t testing.TB, cfg Config) *ConcurrentSystem {
	t.Helper()
	if cfg.Design == nil && cfg.N == 0 {
		cfg.Design = design.Paper931()
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewConcurrent(sys)
}

// TestConcurrentSubmitStress floods a ConcurrentSystem from many
// goroutines at ~5× the admission capacity S/T and asserts the paper's
// core invariant survives the concurrency: every request is admitted
// (Delay policy), no window ever exceeds S admissions, and the guaranteed
// path holds (service starts exactly at the admitted time, so the
// response time equals the service time). Run under -race this doubles as
// the memory-safety proof for the sharded admission path.
func TestConcurrentSubmitStress(t *testing.T) {
	cs := newConcurrent(t, Config{})
	const (
		goroutines = 16
		perG       = 250
		dt         = 0.005 // ms between arrivals → 200 req/ms offered vs ~37.6 capacity
	)
	var clock atomic.Int64
	outs := make([][]Outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = make([]Outcome, 0, perG)
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * dt
				out := cs.Submit(arrival, int64(g*1_000_000+i))
				outs[g] = append(outs[g], out)
			}
		}(g)
	}
	wg.Wait()

	s := cs.S()
	perWindow := make(map[int64]int)
	total := 0
	for g := range outs {
		for _, out := range outs[g] {
			total++
			if out.Rejected {
				t.Fatalf("request rejected under Delay policy: %+v", out)
			}
			if out.Admitted < 0 {
				t.Fatalf("negative admit time: %+v", out)
			}
			if math.Abs(out.Start-out.Admitted) > 1e-9 {
				t.Fatalf("guaranteed path violated: start %.9f != admitted %.9f", out.Start, out.Admitted)
			}
			if r := out.Response(); math.Abs(r-cs.System().cfg.ServiceMS) > 1e-9 {
				t.Fatalf("response %.9f != service time %.9f", r, cs.System().cfg.ServiceMS)
			}
			perWindow[cs.Window(out.Admitted)]++
		}
	}
	if total != goroutines*perG {
		t.Fatalf("outcomes = %d, want %d", total, goroutines*perG)
	}
	for w, n := range perWindow {
		if n > s {
			t.Errorf("window %d admitted %d requests, limit S=%d", w, n, s)
		}
	}
	if max := cs.MaxWindowCount(); max > s {
		t.Errorf("MaxWindowCount = %d, limit S=%d", max, s)
	}
}

// TestConcurrentMixedReadWriteStress mixes reads and writes. A write
// consumes c admission slots, so the per-window invariant becomes
// reads(w) + c·writes(w) ≤ S.
func TestConcurrentMixedReadWriteStress(t *testing.T) {
	cs := newConcurrent(t, Config{})
	c := cs.System().Design().C
	const (
		goroutines = 12
		perG       = 120
	)
	var clock atomic.Int64
	type res struct {
		out   Outcome
		write bool
	}
	results := make([][]res, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * 0.01
				block := int64(rng.Intn(5000))
				if rng.Intn(4) == 0 {
					results[g] = append(results[g], res{cs.SubmitWrite(arrival, block), true})
				} else {
					results[g] = append(results[g], res{cs.Submit(arrival, block), false})
				}
			}
		}(g)
	}
	wg.Wait()

	s := cs.S()
	slots := make(map[int64]int)
	for g := range results {
		for _, r := range results[g] {
			if r.out.Rejected {
				t.Fatalf("rejected under Delay policy: %+v", r.out)
			}
			w := cs.Window(r.out.Admitted)
			if r.write {
				slots[w] += c
			} else {
				slots[w]++
			}
		}
	}
	for w, n := range slots {
		if n > s {
			t.Errorf("window %d consumed %d slots, limit S=%d", w, n, s)
		}
	}
}

// TestConcurrentRejectPolicy floods one instant with far more requests
// than one window holds under the Reject policy: no window may exceed S
// admissions and every request is either admitted or rejected.
func TestConcurrentRejectPolicy(t *testing.T) {
	cs := newConcurrent(t, Config{Policy: admission.Reject})
	const n = 64
	outs := make([]Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = cs.Submit(0, int64(i))
		}(i)
	}
	wg.Wait()

	s := cs.S()
	perWindow := make(map[int64]int)
	admitted, rejected := 0, 0
	for _, out := range outs {
		if out.Rejected {
			rejected++
			continue
		}
		admitted++
		perWindow[cs.Window(out.Admitted)]++
	}
	if admitted+rejected != n {
		t.Fatalf("admitted %d + rejected %d != %d", admitted, rejected, n)
	}
	if admitted == 0 {
		t.Fatal("no request admitted at an empty instant")
	}
	if rejected == 0 {
		t.Fatalf("flooding %d simultaneous requests (S=%d) rejected none", n, s)
	}
	for w, cnt := range perWindow {
		if cnt > s {
			t.Errorf("window %d admitted %d, limit S=%d", w, cnt, s)
		}
	}
}

// TestConcurrentMatchesSequential drives identical request sequences
// through a sequential System and a single-goroutine ConcurrentSystem and
// requires bit-identical outcomes: the concurrent admission algorithm is
// a parallelization of the sequential one, not a different policy.
func TestConcurrentMatchesSequential(t *testing.T) {
	for _, policy := range []admission.Policy{admission.Delay, admission.Reject} {
		seq, err := New(Config{Design: design.Paper931(), Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		cs := newConcurrent(t, Config{Policy: policy})

		rng := rand.New(rand.NewSource(7))
		const n = 2000
		arrivals := make([]float64, n)
		for i := range arrivals {
			arrivals[i] = rng.Float64() * 20 // ms; dense enough to overflow windows
		}
		sort.Float64s(arrivals)
		for i, arr := range arrivals {
			block := int64(rng.Intn(3000))
			write := rng.Intn(8) == 0
			var a, b Outcome
			if write {
				a, b = seq.SubmitWrite(arr, block), cs.SubmitWrite(arr, block)
			} else {
				a, b = seq.Submit(arr, block), cs.Submit(arr, block)
			}
			if a != b {
				t.Fatalf("policy %v, request %d (arr=%.6f block=%d write=%v):\nsequential %+v\nconcurrent %+v",
					policy, i, arr, block, write, a, b)
			}
		}
	}
}

// TestConcurrentStatisticalStress floods the ε > 0 path — now lock-free
// admission against a published Q snapshot, with closed windows merged
// into the estimator behind a short gate lock — from many goroutines.
// Under -race this is the memory-safety proof for the snapshot/merge
// protocol; the assertions pin its structural invariants: every request is
// admitted (Delay policy), Q stays a probability, and after quiescence the
// estimator has folded every closed window exactly once
// (nt == lastClosed+1 — a double or dropped merge breaks it).
func TestConcurrentStatisticalStress(t *testing.T) {
	cs := newConcurrent(t, Config{Epsilon: 0.05, SampleTrials: 2000})
	const goroutines, perG = 8, 300
	var clock atomic.Int64
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * 0.01
				out := cs.Submit(arrival, int64(g*1000+i))
				if !out.Rejected {
					admitted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := admitted.Load(); got != goroutines*perG {
		t.Errorf("admitted %d, want %d (Delay policy rejects nothing)", got, goroutines*perG)
	}
	if q := cs.Q(); q < 0 || q > 1 {
		t.Errorf("Q = %g, want a probability", q)
	}
	gate := cs.System().stat
	last := gate.lastClosed.Load()
	if nt := gate.intervals(); nt != last+1 {
		t.Errorf("estimator folded %d intervals, lastClosed=%d: every closed window must merge exactly once", nt, last)
	}
	if last < 1 {
		t.Errorf("lastClosed=%d: the stress run should have closed many windows", last)
	}
}

// TestConcurrentStatisticalMergeStress hammers the window-close boundary
// specifically: many goroutines submit arrivals straddling the same window
// edges, so merges race with lock-free snapshot readers and with stragglers
// adding to just-closed windows. Run under -race this is the data-race
// proof for statGate; the exactly-once fold invariant is re-asserted after
// the storm, and a concurrent table refresh races against it all to cover
// the setTable path too.
func TestConcurrentStatisticalMergeStress(t *testing.T) {
	cs := newConcurrent(t, Config{Epsilon: 0.05, SampleTrials: 1000})
	const goroutines = 8
	const windows = 200
	T := cs.IntervalMS()
	var subWg, refWg sync.WaitGroup
	stopRefresh := make(chan struct{})
	refWg.Add(1)
	go func() { // concurrent P_k refreshes while submissions are in flight
		defer refWg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stopRefresh:
				return
			default:
			}
			if err := cs.RefreshTable(200, 100+i); err != nil {
				t.Errorf("RefreshTable: %v", err)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		subWg.Add(1)
		go func(g int) {
			defer subWg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for w := 0; w < windows; w++ {
				// Arrivals jittered around each window boundary, from every
				// goroutine at once: some land just before the edge (into the
				// closing window), some just after (forcing the close).
				base := float64(w) * T
				for i := 0; i < 4; i++ {
					arr := base + (rng.Float64()-0.3)*T*0.5
					if arr < 0 {
						arr = 0
					}
					out := cs.Submit(arr, int64(rng.Intn(4000)))
					if out.Rejected {
						t.Errorf("rejected under Delay policy: %+v", out)
						return
					}
				}
			}
		}(g)
	}
	subWg.Wait()
	close(stopRefresh)
	refWg.Wait()
	gate := cs.System().stat
	last := gate.lastClosed.Load()
	if nt := gate.intervals(); nt != last+1 {
		t.Errorf("estimator folded %d intervals, lastClosed=%d: exactly-once merge violated", nt, last)
	}
	if q := cs.Q(); q < 0 || q > 1 {
		t.Errorf("Q = %g, want a probability", q)
	}
}

// TestStatisticalViolationBoundConcurrent reruns the statistical QoS
// contract test (TestStatisticalViolationBound in core_test.go) with the
// same trace, table and epsilon, but with 8 goroutines pulling records off
// a shared index and submitting through the ConcurrentSystem — the
// lock-free snapshot path, not the old serialized one. The contract must
// survive the parallelism: the controller's Q stays below epsilon (each
// over-admission was approved against a snapshot that satisfied the bound,
// and snapshots lag live state by at most the merges in flight), and the
// realized per-window violation rate stays the same order of magnitude.
func TestStatisticalViolationBoundConcurrent(t *testing.T) {
	tr, err := trace.ExchangeLike(13, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := sampling.Estimate(base.Allocator(), sampling.Options{MaxK: 25, Trials: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.002
	cs := newConcurrent(t, Config{Epsilon: eps, Table: tab})
	const goroutines = 8
	outs := make([]Outcome, len(tr.Records))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(tr.Records)) {
					return
				}
				r := tr.Records[i]
				outs[i] = cs.Submit(r.Arrival, r.Block)
			}
		}()
	}
	wg.Wait()

	violWindows := map[int64]bool{}
	var lastWindow int64
	for _, out := range outs {
		w := cs.Window(out.Admitted)
		if w > lastWindow {
			lastWindow = w
		}
		if out.Response() > service+1e-9 {
			violWindows[w] = true
		}
	}
	if lastWindow == 0 {
		t.Fatal("no windows observed")
	}
	// The snapshot a decision reads can lag the live estimator by the merges
	// in flight, so unlike the serial test Q is checked against epsilon plus
	// that bounded staleness, not against epsilon exactly: with 8 submitters
	// the overshoot is at most a handful of one-interval increments.
	if q := cs.Q(); q >= eps*1.5 {
		t.Errorf("controller Q = %.5f, must stay near epsilon %.3f (bounded staleness)", q, eps)
	}
	rate := float64(len(violWindows)) / float64(lastWindow+1)
	if rate > 0.02 {
		t.Errorf("realized violation rate %.5f implausibly high for epsilon %.3f", rate, eps)
	}
	if len(violWindows) == 0 {
		t.Error("expected some over-admissions at this epsilon (tradeoff should engage)")
	}
	gate := cs.System().stat
	if nt := gate.intervals(); nt != gate.lastClosed.Load()+1 {
		t.Errorf("estimator folded %d intervals, lastClosed=%d", nt, gate.lastClosed.Load())
	}
}

// certainTable builds a P_k table that declares every request size
// optimally retrievable with certainty, so QWith is 0 for every k and the
// statistical controller over-admits forever. Tests use it to hold the
// fast path in one window without the window-close or delay machinery
// engaging.
func certainTable(n, maxK int) *sampling.Table {
	p := make([]float64, maxK+1)
	for i := range p {
		p[i] = 1
	}
	return &sampling.Table{N: n, Trials: 1, P: p}
}

// TestConcurrentStatisticalZeroAllocFastPath pins the statistical admit
// fast path at zero heap allocations per request: window-close check
// (one atomic load), snapshot bound check (one atomic pointer load + the
// nk scan), sharded-counter reservation, and scheduler submit must all run
// allocation-free. A regression here (a snapshot copy per request, a
// boxed interface, a map insert on the hot path) fails the pin.
func TestConcurrentStatisticalZeroAllocFastPath(t *testing.T) {
	cs := newConcurrent(t, Config{Epsilon: 0.5, Table: certainTable(9, 25)})
	// Warm up: allocate window 0's counter shard entry and fill past S so
	// every measured submit takes the statistical (over-admission) branch.
	for i := 0; i < 2*cs.S(); i++ {
		cs.Submit(0, int64(i%64))
	}
	var i int64
	allocs := testing.AllocsPerRun(500, func() {
		out := cs.Submit(0, i%64)
		i++
		if out.Rejected {
			t.Fatal("unexpected rejection on the Delay fast path")
		}
	})
	if allocs != 0 {
		t.Errorf("statistical admit fast path: %.1f allocs/op, want 0", allocs)
	}
}

// TestRefreshTableLifecycle covers the background P_k refresh plumbing:
// refreshing a live statistical system keeps Q a probability and the fold
// invariant intact, deterministic systems refuse refreshes, and the
// ticker-driven StartTableRefresh loop starts, refreshes and stops cleanly
// (stop is idempotent and waits out in-flight refreshes).
func TestRefreshTableLifecycle(t *testing.T) {
	det := newConcurrent(t, Config{})
	if err := det.RefreshTable(100, 1); err == nil {
		t.Error("RefreshTable on a deterministic system should error")
	}
	if _, err := det.StartTableRefresh(time.Millisecond, 100, 1); err == nil {
		t.Error("StartTableRefresh on a deterministic system should error")
	}

	cs := newConcurrent(t, Config{Epsilon: 0.05, SampleTrials: 500})
	for i := 0; i < 200; i++ {
		cs.Submit(float64(i)*0.01, int64(i%64))
	}
	qBefore := cs.Q()
	if err := cs.RefreshTable(4000, 99); err != nil {
		t.Fatal(err)
	}
	if q := cs.Q(); q < 0 || q > 1 {
		t.Errorf("Q after refresh = %g, want a probability", q)
	} else if q == qBefore && qBefore != 0 {
		// Not an invariant, just a sanity expectation: an 8× trial count with
		// a different seed should move the estimate at least in the last bits.
		t.Logf("Q unchanged across refresh (%g); table likely converged", q)
	}
	gate := cs.System().stat
	if nt := gate.intervals(); nt != gate.lastClosed.Load()+1 {
		t.Errorf("fold invariant broken by refresh: nt=%d lastClosed=%d", nt, gate.lastClosed.Load())
	}

	stop, err := cs.StartTableRefresh(time.Millisecond, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let a few ticks fire
	for i := 0; i < 200; i++ {
		cs.Submit(float64(200+i)*0.01, int64(i%64)) // submits race the refresher
	}
	stop()
	stop() // idempotent
	if q := cs.Q(); q < 0 || q > 1 {
		t.Errorf("Q after background refreshes = %g, want a probability", q)
	}
}

// TestConcurrentAccessors sanity-checks the read-only delegates the
// network layer relies on.
func TestConcurrentAccessors(t *testing.T) {
	cs := newConcurrent(t, Config{})
	if cs.S() != cs.System().S() {
		t.Errorf("S mismatch: %d vs %d", cs.S(), cs.System().S())
	}
	if cs.IntervalMS() != cs.System().cfg.IntervalMS {
		t.Errorf("IntervalMS mismatch")
	}
	if got, want := cs.DesignBlock(100), cs.System().Mapper().DesignBlock(100); got != want {
		t.Errorf("DesignBlock(100) = %d, want %d", got, want)
	}
	reps := cs.Replicas(100)
	if len(reps) != cs.System().Design().C {
		t.Errorf("Replicas(100) = %v, want %d devices", reps, cs.System().Design().C)
	}
	if q := cs.Q(); q != 0 {
		t.Errorf("deterministic Q = %g, want 0", q)
	}
	if w := cs.Window(0); w != 0 {
		t.Errorf("Window(0) = %d, want 0", w)
	}
}

// TestWindowShardPruning pushes the admission frontier across far more
// counter chunks than the prune threshold and checks old chunks are
// dropped while the invariant still holds for live ones.
func TestWindowShardPruning(t *testing.T) {
	cs := newConcurrent(t, Config{})
	led := cs.System().ledger.(*shardedLedger)
	// Touch many distinct chunks that all land on shard 0: stepping the
	// window by windowShardCount*chunkSize advances the chunk index by
	// windowShardCount, which keeps chunk&(windowShardCount-1) fixed.
	const step = windowShardCount * chunkSize
	const windows = step * (shardPruneLen + 100)
	for w := int64(0); w < windows; w += step {
		led.counter(w).Store(1)
		led.hint.Store(w) // frontier far ahead, as sustained overload leaves it
	}
	sh := &led.shards[0]
	sh.mu.Lock()
	n := len(sh.chunks)
	sh.mu.Unlock()
	if n > shardPruneLen+1 {
		t.Errorf("shard 0 tracks %d chunks, prune threshold %d", n, shardPruneLen)
	}
}

func BenchmarkConcurrentSubmit(b *testing.B) {
	cs := newConcurrent(b, Config{})
	var clock atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			arrival := float64(clock.Add(1)) * 0.005
			cs.Submit(arrival, i)
			i++
		}
	})
}

// BenchmarkTenantSubmit measures the tenant seam's cost on the submit
// hot path with a live two-tenant policy installed. untagged is the
// tenant-less traffic the refactor must not tax: tenant == 0 skips the
// gate entirely (not even the snapshot load), so benchgate holds it
// within ~5% of BenchmarkConcurrentSubmit's ns/op via a ratio directive
// — together with the absolute gate on BenchmarkConcurrentSubmit that
// pins tenant-less traffic to the pre-seam cost. tagged is the gated
// path (arrival limit + per-window cap acquisition before the ledger);
// it pays the O(1) gate and is gated absolutely, not by ratio.
func BenchmarkTenantSubmit(b *testing.B) {
	for _, tagged := range []bool{false, true} {
		name := "untagged"
		if tagged {
			name = "tagged"
		}
		b.Run(name, func(b *testing.B) {
			cs := newConcurrent(b, Config{})
			err := cs.SetTenants([]admission.TenantSpec{
				{Name: "a", Reserve: 1, Weight: 3},
				{Name: "b", Reserve: 1, Weight: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			var clock atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				i := int64(0)
				for pb.Next() {
					arrival := float64(clock.Add(1)) * 0.005
					var tenant int32
					if tagged {
						tenant = int32(1 + i&1)
					}
					cs.SubmitTenant(arrival, i, tenant)
					i++
				}
			})
		})
	}
}

// BenchmarkConcurrentStatistical measures the parallel ε > 0 admission
// path under the same offered load shape as BenchmarkConcurrentSubmit, so
// the two are directly comparable: the acceptance bar for the statistical
// parallelization is staying within 2× of the deterministic path's
// throughput (the old implementation serialized every ε > 0 submit behind
// a global mutex).
func BenchmarkConcurrentStatistical(b *testing.B) {
	cs := newConcurrent(b, Config{Epsilon: 0.05, SampleTrials: 2000})
	var clock atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			arrival := float64(clock.Add(1)) * 0.005
			cs.Submit(arrival, i)
			i++
		}
	})
}
