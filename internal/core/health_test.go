package core

import (
	"sync"
	"testing"

	"flashqos/internal/design"
	"flashqos/internal/health"
)

func newHealthSystem(t testing.TB, cfg Config) (*System, *health.Monitor) {
	t.Helper()
	if cfg.Design == nil {
		cfg.Design = design.Paper931()
	}
	if cfg.M == 0 {
		cfg.M = 1
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := sys.NewHealthMonitor(0, health.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, mon
}

// findBlock returns a data block whose replica set satisfies pred.
func findBlock(t testing.TB, sys *System, pred func(replicas []int) bool) int64 {
	t.Helper()
	for b := int64(0); b < int64(sys.Allocator().Rows()); b++ {
		if pred(sys.Replicas(b)) {
			return b
		}
	}
	t.Fatal("no block matches predicate")
	return -1
}

func contains(devs []int, d int) bool {
	for _, x := range devs {
		if x == d {
			return true
		}
	}
	return false
}

func intersects(a, b []int) bool {
	for _, d := range a {
		if contains(b, d) {
			return true
		}
	}
	return false
}

// TestDegradedAdmissionS: failing devices must drop the admission limit to
// S'(M) = (c'-1)M² + c'M with c' = c - f, and recovery must restore S. For
// the (9,3,1) design with M = 1 that is 5 → 3 → 1 → 5.
func TestDegradedAdmissionS(t *testing.T) {
	sys, mon := newHealthSystem(t, Config{})

	// admittedNow submits n distinct blocks at t=0 and counts how many were
	// served without delay — exactly the per-window guarantee under the
	// Delay policy when all devices start idle.
	admittedNow := func(n int) (now int, onFailed bool) {
		sys.Reset()
		for b := int64(0); b < int64(n); b++ {
			out := sys.Submit(0, b)
			if out.Rejected {
				continue
			}
			if !out.Delayed {
				now++
				if mon.State(out.Device) == health.Failed {
					onFailed = true
				}
			}
		}
		return now, onFailed
	}

	if got := sys.EffectiveS(); got != 5 {
		t.Fatalf("healthy EffectiveS = %d, want 5", got)
	}
	if now, _ := admittedNow(9); now != 5 {
		t.Fatalf("healthy array served %d requests in window 0, want 5", now)
	}

	if err := mon.Fail(0); err != nil {
		t.Fatal(err)
	}
	if got := sys.EffectiveS(); got != 3 {
		t.Fatalf("1 failure: EffectiveS = %d, want 3", got)
	}
	now, onFailed := admittedNow(9)
	if now != 3 {
		t.Errorf("1 failure: served %d requests in window 0, want 3", now)
	}
	if onFailed {
		t.Error("request scheduled on a failed device")
	}

	if err := mon.Fail(1); err != nil {
		t.Fatal(err)
	}
	if got := sys.EffectiveS(); got != 1 {
		t.Fatalf("2 failures: EffectiveS = %d, want 1", got)
	}
	if now, _ := admittedNow(9); now != 1 {
		t.Errorf("2 failures: served %d requests in window 0, want 1", now)
	}

	// The guard refuses the c-th failure — buckets would lose their last
	// replica.
	if err := mon.Fail(2); err == nil {
		t.Error("third Fail succeeded, want MaxUnavailable error")
	}

	// No rebuilder configured: Recover goes straight back to Healthy.
	if err := mon.Recover(0); err != nil {
		t.Fatal(err)
	}
	if err := mon.Recover(1); err != nil {
		t.Fatal(err)
	}
	if got := sys.EffectiveS(); got != 5 {
		t.Fatalf("after recovery EffectiveS = %d, want 5", got)
	}
	if now, _ := admittedNow(9); now != 5 {
		t.Errorf("recovered array served %d requests in window 0, want 5", now)
	}
}

// TestDegradedWriteConsumesAliveSlots: a degraded write updates only the
// surviving replicas and charges only that many admission slots.
func TestDegradedWriteConsumesAliveSlots(t *testing.T) {
	sys, mon := newHealthSystem(t, Config{})
	if err := mon.Fail(0); err != nil {
		t.Fatal(err)
	}
	// S' = 3. A write to a block with one replica on the failed device has
	// 2 live copies, so 1 read slot must remain in window 0.
	wb := findBlock(t, sys, func(r []int) bool { return contains(r, 0) })
	wout := sys.SubmitWrite(0, wb)
	if wout.Rejected || wout.Delayed {
		t.Fatalf("degraded write not served immediately: %+v", wout)
	}
	if wout.Device == 0 {
		t.Error("write landed on the failed device")
	}
	wset := sys.Replicas(wb)
	rb := findBlock(t, sys, func(r []int) bool { return !intersects(r, wset) })
	if out := sys.Submit(0, rb); out.Delayed || out.Rejected {
		t.Errorf("write consumed more than its 2 live slots: third slot unusable (%+v)", out)
	}
	rset := sys.Replicas(rb)
	rb2 := findBlock(t, sys, func(r []int) bool { return !intersects(r, wset) && !intersects(r, rset) })
	if out := sys.Submit(0, rb2); !out.Delayed {
		t.Errorf("window over S'=3 still served immediately: %+v", out)
	}
}

// TestUnavailableOutcome: when every replica of a block is out of service
// (possible only past the design's fault-tolerance limit, so the monitor is
// built with a raised MaxUnavailable), submission reports Unavailable
// rather than wedging or panicking.
func TestUnavailableOutcome(t *testing.T) {
	sys, err := New(Config{Design: design.Paper931(), M: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := health.NewMonitor(health.Config{Devices: 9, MaxUnavailable: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachHealth(mon); err != nil {
		t.Fatal(err)
	}
	dead := sys.Replicas(0)
	for _, d := range dead {
		if err := mon.Fail(d); err != nil {
			t.Fatal(err)
		}
	}
	if out := sys.Submit(0, 0); !out.Rejected || !out.Unavailable {
		t.Errorf("read of fully-dead block: %+v, want Rejected+Unavailable", out)
	}
	if out := sys.SubmitWrite(0, 0); !out.Rejected || !out.Unavailable {
		t.Errorf("write of fully-dead block: %+v, want Rejected+Unavailable", out)
	}
	live := findBlock(t, sys, func(r []int) bool {
		for _, d := range r {
			if !contains(dead, d) {
				return true
			}
		}
		return false
	})
	outs := sys.SubmitBatch(0, []int64{0, live})
	if !outs[0].Unavailable {
		t.Errorf("batch entry for dead block: %+v, want Unavailable", outs[0])
	}
	if outs[1].Rejected {
		t.Errorf("batch entry for live block rejected: %+v", outs[1])
	}
	if contains(dead, outs[1].Device) {
		t.Errorf("batch scheduled block on dead device %d", outs[1].Device)
	}
}

// TestConcurrentMaskFlipRace hammers ConcurrentSystem.Submit from many
// goroutines while an admin goroutine flips devices in and out of service.
// Run under -race. Invariants: no window ever exceeds S, no request is
// reported Unavailable (at most c-1 devices fail, so every block keeps a
// live replica), and every admitted request lands on one of its replicas.
func TestConcurrentMaskFlipRace(t *testing.T) {
	sys, mon := newHealthSystem(t, Config{})
	cs := NewConcurrent(sys)

	const (
		submitters = 8
		perG       = 300
		flips      = 60
	)
	var wg sync.WaitGroup
	errs := make(chan string, submitters*perG)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				block := int64((g*perG + i) % 36)
				out := cs.Submit(float64(i)*0.02, block)
				switch {
				case out.Unavailable:
					errs <- "Unavailable outcome with at most c-1 failures"
				case !out.Rejected && !contains(cs.Replicas(block), out.Device):
					errs <- "admitted request served off-replica"
				}
			}
		}(g)
	}
	var admin sync.WaitGroup
	admin.Add(1)
	go func() {
		defer admin.Done()
		for k := 0; k < flips; k++ {
			d := k % 2
			mon.Fail(d)    // error (already failed / guard) is fine
			mon.Recover(d) // error (already healthy) is fine
		}
	}()
	wg.Wait()
	admin.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if max := cs.MaxWindowCount(); max > sys.S() {
		t.Errorf("window count reached %d, above S=%d", max, sys.S())
	}
}

// degradedSteadyCfg shapes a system so that an unbounded run of submissions
// stays inside one admission window on the guaranteed path: a huge interval
// and a large M keep S' above the iteration count, and arrivals spaced
// wider than the service time keep a replica idle at every arrival.
func degradedSteadyCfg() Config {
	return Config{Design: design.Paper931(), M: 50, IntervalMS: 1000}
}

// TestSubmitDegradedAllocs pins the sequential degraded submit path at zero
// allocations in steady state: the mask read is one atomic load and the
// per-replica availability checks are inline bit tests.
func TestSubmitDegradedAllocs(t *testing.T) {
	sys, mon := newHealthSystem(t, degradedSteadyCfg())
	if err := mon.Fail(4); err != nil {
		t.Fatal(err)
	}
	at, i := 0.0, 0
	submit := func() {
		sys.Submit(at, int64(i%36))
		at += 0.2
		i++
	}
	for k := 0; k < 10; k++ {
		submit() // warm up: window counter entry, map growth
	}
	if allocs := testing.AllocsPerRun(300, submit); allocs != 0 {
		t.Errorf("degraded System.Submit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentSubmitDegradedAllocs pins the concurrent degraded submit
// path — the qosnet server's hot path — at zero allocations in steady
// state.
func TestConcurrentSubmitDegradedAllocs(t *testing.T) {
	sys, mon := newHealthSystem(t, degradedSteadyCfg())
	cs := NewConcurrent(sys)
	if err := mon.Fail(4); err != nil {
		t.Fatal(err)
	}
	at, i := 0.0, 0
	submit := func() {
		cs.Submit(at, int64(i%36))
		at += 0.2
		i++
	}
	for k := 0; k < 10; k++ {
		submit()
	}
	if allocs := testing.AllocsPerRun(300, submit); allocs != 0 {
		t.Errorf("degraded ConcurrentSystem.Submit allocates %.1f objects/op, want 0", allocs)
	}
}
