package core

import (
	"fmt"

	"flashqos/internal/design"
	"flashqos/internal/health"
)

// Health integration: when a health.Monitor is attached, the admission and
// retrieval paths consult its availability mask — one atomic pointer load
// per request, no locks, no allocations — and the per-interval guarantee
// degrades predictably instead of silently breaking.
//
// # The degraded guarantee S'
//
// The full-array guarantee S(M) = (c-1)M² + cM counts how many buckets are
// always retrievable in M parallel accesses when every bucket has c
// replicas on distinct devices and any two devices share at most λ = 1
// bucket (paper §II-B2). Removing f devices from service preserves the
// pair-intersection property (a sub-array of a λ=1 design still has λ ≤ 1)
// and leaves every bucket at least c' = c - f live replicas, so the same
// counting argument yields the degraded guarantee
//
//	S'(M) = (c'-1)M² + c'M,  c' = c - f.
//
// For the paper's (9,3,1) design with M = 1: S = 5, one failure → S' = 3,
// two failures → S' = 1. The monitor's MaxUnavailable guard (set to c-1
// here) refuses to take the f-th device out of service when f >= c, which
// is exactly where buckets would lose their last replica — so c' >= 1 and
// S' >= M always hold while data is reachable.

// AttachHealth wires a device-health monitor into the system: admission
// recomputes the effective guarantee S' from the monitor's mask and
// retrieval skips unavailable devices. The monitor must cover exactly the
// system's devices. Attach before serving; the System (or a wrapping
// ConcurrentSystem) reads the monitor's snapshots from then on.
//
// Statistical mode (Epsilon > 0) keeps its full-array probability table —
// the sampled P_k distribution is not recomputed for the degraded array —
// so under failures the deterministic limit degrades to S' but Q remains
// the full-array estimate. This is a documented approximation, not a
// guarantee.
func (s *System) AttachHealth(mon *health.Monitor) error {
	if mon == nil {
		s.health = nil
		return nil
	}
	if n := s.alloc.Devices(); mon.Devices() != n {
		return fmt.Errorf("core: health monitor covers %d devices, system has %d", mon.Devices(), n)
	}
	if s.alloc.Devices() > 64 {
		return fmt.Errorf("core: health masks support at most 64 devices, system has %d", s.alloc.Devices())
	}
	s.health = mon
	return nil
}

// Health returns the attached monitor (nil when none).
func (s *System) Health() *health.Monitor { return s.health }

// NewHealthMonitor builds a monitor shaped for this system: one state
// machine per flash module, the availability guard at c-1 (the design's
// fault-tolerance limit), the latency baseline at the configured service
// time, and — when rebuildRate > 0 — a token-bucket rebuild scheduler
// whose work lists come from the allocator (every bucket with a replica on
// the failed device). Remaining Config fields (detector thresholds, clock,
// callbacks) come from over; its Devices, MaxUnavailable, BaselineMS and
// Rebuild.BucketsOf are overwritten.
func (s *System) NewHealthMonitor(rebuildRate float64, over health.Config) (*health.Monitor, error) {
	over.Devices = s.alloc.Devices()
	over.MaxUnavailable = s.alloc.Copies() - 1
	if over.BaselineMS == 0 {
		over.BaselineMS = s.cfg.ServiceMS
	}
	over.Rebuild.RatePerSec = rebuildRate
	if rebuildRate > 0 {
		alloc := s.alloc
		over.Rebuild.BucketsOf = func(dev int) []int {
			var buckets []int
			for b := 0; b < alloc.Rows(); b++ {
				for _, d := range alloc.Replicas(b) {
					if d == dev {
						buckets = append(buckets, b)
						break
					}
				}
			}
			return buckets
		}
	}
	mon, err := health.NewMonitor(over)
	if err != nil {
		return nil, err
	}
	if err := s.AttachHealth(mon); err != nil {
		return nil, err
	}
	return mon, nil
}

// maskLimit snapshots the availability state for one admission decision:
// the device bitmask, the effective per-interval limit (S, or S' when
// degraded), and whether masking applies at all. One atomic load; zero
// allocations.
func (e *engine) maskLimit() (bits uint64, limit int, masked bool) {
	if e.health == nil {
		return 0, e.s, false
	}
	m := e.health.Mask()
	if m.Full() {
		return m.Bits, e.s, true
	}
	return m.Bits, e.degradedS(m.Unavailable()), true
}

// degradedS prices the guarantee for f unavailable devices.
func (e *engine) degradedS(f int) int {
	sp := design.SFor(e.alloc.Copies()-f, e.cfg.M)
	if sp < 1 {
		// Unreachable when the monitor's MaxUnavailable guard is c-1;
		// serve best-effort one-per-interval rather than wedging.
		return 1
	}
	return sp
}

// EffectiveS returns the current admission limit: S(M) with a healthy
// array, S'(M) when the health mask is degraded.
func (e *engine) EffectiveS() int {
	_, limit, _ := e.maskLimit()
	return limit
}

// aliveReplicas counts the replicas inside the mask.
func aliveReplicas(replicas []int, mask uint64) int {
	n := 0
	for _, d := range replicas {
		if mask&(1<<uint(d)) != 0 {
			n++
		}
	}
	return n
}
