package core

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"flashqos/internal/flashsim"
	"flashqos/internal/trace"
)

func TestNormalizeService(t *testing.T) {
	r, w := normalizeService(nil, 0, 0)
	if r != flashsim.DefaultReadLatency || w != flashsim.DefaultWriteLatency {
		t.Errorf("normalizeService(nil, 0, 0) = %g, %g, want flashsim defaults", r, w)
	}
	r, w = normalizeService(MemBackend{ReadMS: 0.2, WriteMS: 0.5}, 0, 0)
	if r != 0.2 || w != 0.5 {
		t.Errorf("normalizeService(mem, 0, 0) = %g, %g, want 0.2, 0.5", r, w)
	}
	r, w = normalizeService(DefaultBackend(), 0.3, 0.7)
	if r != 0.3 || w != 0.7 {
		t.Errorf("explicit service times overridden: got %g, %g", r, w)
	}
}

// TestMemBackendMatchesSim proves the Backend seam: the raw-trace replay
// produces identical reports over the in-memory FIFO backend and the
// flashsim discrete-event model (which reduces to FIFO fixed-latency with
// one way and no jitter).
func TestMemBackendMatchesSim(t *testing.T) {
	tr := &trace.Trace{Name: "seam", IntervalMS: 10}
	for i := 0; i < 400; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Arrival: float64(i) * 0.0493,
			Block:   int64(i % 17),
			Device:  (i * 7) % 5,
		})
	}
	simRep, err := ReplayOriginalOn(DefaultBackend(), tr, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	memRep, err := ReplayOriginalOn(MemBackend{}, tr, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simRep, memRep) {
		t.Errorf("reports differ across backends:\nsim: %+v\nmem: %+v", simRep, memRep)
	}
	if simRep.Requests != 400 {
		t.Errorf("replay served %d requests, want 400", simRep.Requests)
	}
}

// TestBackendDefaultsFlowIntoSystem checks that a System picks its service
// times up from the configured backend, end to end through admission.
func TestBackendDefaultsFlowIntoSystem(t *testing.T) {
	sys, err := New(Config{N: 9, C: 3, IntervalMS: 0.25, Backend: MemBackend{ReadMS: 0.2, WriteMS: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend().Name() != "mem" {
		t.Errorf("backend name %q, want mem", sys.Backend().Name())
	}
	out := sys.Submit(0, 1)
	if math.Abs(out.Response()-0.2) > 1e-12 {
		t.Errorf("read response %g, want backend read latency 0.2", out.Response())
	}
	wout := sys.SubmitWrite(1.0, 2)
	if math.Abs(wout.Response()-0.6) > 1e-12 {
		t.Errorf("write response %g, want backend write latency 0.6", wout.Response())
	}
}

func TestMemBackendFIFOOrder(t *testing.T) {
	arr, err := MemBackend{ReadMS: 1}.NewArray(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two requests race on device 0; device 1 stays idle.
	arr.Submit(1, 0, 0, 10)
	arr.Submit(2, 0.5, 0, 11)
	arr.Submit(3, 0.25, 1, 12)
	cs := arr.Drain()
	if len(cs) != 3 {
		t.Fatalf("drained %d completions, want 3", len(cs))
	}
	// Completion order: dev0@1.0, dev1@1.25, dev0-queued@2.0.
	wantFinish := []float64{1, 1.25, 2}
	for i, c := range cs {
		if c.FinishMS != wantFinish[i] {
			t.Errorf("completion %d finish %g, want %g", i, c.FinishMS, wantFinish[i])
		}
	}
	if cs[2].StartMS != 1 || cs[2].ArrivalMS != 0.5 {
		t.Errorf("queued request start %g arrival %g, want start 1 arrival 0.5", cs[2].StartMS, cs[2].ArrivalMS)
	}
}

// TestArraySubmitDeviceBounds pins the unified bounds contract at the
// Backend seam: every backend's Array rejects an out-of-range device with
// an error (no panic, no silent forwarding into the backend's internals),
// and in-range submissions still drain normally afterwards.
func TestArraySubmitDeviceBounds(t *testing.T) {
	backends := []Backend{
		DefaultBackend(),
		MemBackend{},
		&PackBackend{Dir: t.TempDir()},
	}
	for _, b := range backends {
		arr, err := b.NewArray(4, 1)
		if err != nil {
			t.Fatalf("%s: NewArray: %v", b.Name(), err)
		}
		for _, dev := range []int{-1, 4, 1000} {
			err := arr.Submit(1, 0, dev, 7)
			if err == nil {
				t.Fatalf("%s: Submit(device=%d) accepted an out-of-range device", b.Name(), dev)
			}
			want := fmt.Sprintf("device %d out of range [0,4)", dev)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: Submit(device=%d) error %q, want it to mention %q", b.Name(), dev, err, want)
			}
		}
		if err := arr.Submit(2, 0, 3, 7); err != nil {
			t.Fatalf("%s: in-range Submit failed: %v", b.Name(), err)
		}
		if cs := arr.Drain(); len(cs) != 1 || cs[0].Device != 3 {
			t.Fatalf("%s: Drain after rejected submits = %+v, want one completion on device 3", b.Name(), cs)
		}
	}
}
