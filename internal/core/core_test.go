package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flashqos/internal/admission"
	"flashqos/internal/design"
	"flashqos/internal/flashsim"
	"flashqos/internal/sampling"
	"flashqos/internal/trace"
)

const service = flashsim.DefaultReadLatency

func detSystem(t testing.TB) *System {
	t.Helper()
	s, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefaults(t *testing.T) {
	s := detSystem(t)
	if s.S() != 5 {
		t.Errorf("S = %d, want 5 for (9,3,1) M=1", s.S())
	}
	if s.Design().N != 9 {
		t.Error("design not wired")
	}
}

func TestNewByParams(t *testing.T) {
	s, err := New(Config{N: 13, C: 3, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.S() != 14 {
		t.Errorf("S = %d, want 14 for M=2", s.S())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 10, C: 3}); err == nil {
		t.Error("no construction for (10,3) should fail")
	}
	if _, err := New(Config{Design: design.Paper931(), M: -1}); err == nil {
		t.Error("negative M should fail")
	}
	if _, err := New(Config{Design: design.Paper931(), IntervalMS: 0.01}); err == nil {
		t.Error("interval shorter than service time should fail")
	}
	bad := &design.Design{N: 9, C: 3, Lambda: 1, Blocks: [][]int{{0, 1, 2}}}
	if _, err := New(Config{Design: bad}); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestSubmitImmediate(t *testing.T) {
	s := detSystem(t)
	out := s.Submit(0, 0)
	if out.Delayed || out.Rejected {
		t.Errorf("first request should be immediate: %+v", out)
	}
	if math.Abs(out.Response()-service) > 1e-9 {
		t.Errorf("response = %g, want %g", out.Response(), service)
	}
}

func TestSubmitGuaranteeWithinS(t *testing.T) {
	// 5 distinct buckets at the same instant: every one must be served
	// immediately (idle replica always exists within the guarantee).
	s := detSystem(t)
	for i := int64(0); i < 5; i++ {
		out := s.Submit(0, i*7) // spread across design blocks
		if out.Rejected {
			t.Fatalf("request %d rejected", i)
		}
		if out.Response() > service+1e-9 {
			t.Errorf("request %d response %g exceeds service time", i, out.Response())
		}
	}
}

func TestSubmitDelaysOverCapacity(t *testing.T) {
	s := detSystem(t)
	delayed := 0
	for i := int64(0); i < 8; i++ {
		out := s.Submit(0, i)
		if out.Delayed {
			delayed++
			if out.Admitted < s.cfg.IntervalMS {
				t.Errorf("delayed request admitted at %g, want >= next window %g", out.Admitted, s.cfg.IntervalMS)
			}
		}
	}
	if delayed != 3 {
		t.Errorf("delayed %d of 8 requests, want 3 (S=5)", delayed)
	}
}

func TestSubmitRejectPolicy(t *testing.T) {
	s, err := New(Config{Design: design.Paper931(), Policy: admission.Reject})
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := int64(0); i < 8; i++ {
		if s.Submit(0, i).Rejected {
			rejected++
		}
	}
	if rejected != 3 {
		t.Errorf("rejected %d, want 3", rejected)
	}
}

func TestSubmitDeviceBusyDelay(t *testing.T) {
	// Same bucket four times at once: only 3 replicas exist, so the fourth
	// must wait for a device to free up even though capacity S=5 remains.
	s := detSystem(t)
	var outs []Outcome
	for i := 0; i < 4; i++ {
		outs = append(outs, s.Submit(0, 0))
	}
	if outs[3].Delay <= 0 {
		t.Errorf("fourth duplicate should wait for a free replica: %+v", outs[3])
	}
	if outs[3].Response() > service+1e-9 {
		t.Error("after admission, response must still be one service time")
	}
}

func TestStatisticalAdmitsConflicts(t *testing.T) {
	// With a permissive epsilon, the duplicate-bucket conflict above is
	// admitted instead of delayed, at the cost of queueing.
	tab := &sampling.Table{N: 9, P: make([]float64, 30)}
	for i := range tab.P {
		tab.P[i] = 1
	}
	tab.P[9] = 0.75 // irrelevant here, realistic shape
	s, err := New(Config{Design: design.Paper931(), Epsilon: 0.5, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	var outs []Outcome
	for i := 0; i < 4; i++ {
		outs = append(outs, s.Submit(0, 0))
	}
	last := outs[3]
	if last.Delayed || last.Rejected {
		t.Errorf("statistical QoS should admit the conflicting request: %+v", last)
	}
	if last.Response() <= service {
		t.Error("admitted conflicting request should queue (response > service)")
	}
}

func TestRemapUsesFIM(t *testing.T) {
	s := detSystem(t)
	// Two blocks always requested together in the previous interval.
	var prev []trace.Record
	for i := 0; i < 10; i++ {
		at := float64(i) * 10
		prev = append(prev, trace.Record{Arrival: at, Block: 100}, trace.Record{Arrival: at + 0.01, Block: 200})
	}
	pairs := s.Remap(prev)
	if pairs < 1 {
		t.Fatalf("expected frequent pairs, got %d", pairs)
	}
	if !s.Mapper().Mapped(100) || !s.Mapper().Mapped(200) {
		t.Fatal("co-requested blocks not mapped")
	}
	r1, r2 := s.Replicas(100), s.Replicas(200)
	same := true
	for i := range r1 {
		if r1[i] != r2[i] {
			same = false
		}
	}
	if same {
		t.Error("co-requested blocks should map to different device sets")
	}
}

func TestRemapDisabled(t *testing.T) {
	s, err := New(Config{Design: design.Paper931(), DisableFIM: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := []trace.Record{{Arrival: 0, Block: 1}, {Arrival: 0.01, Block: 2}}
	if got := s.Remap(prev); got != 0 {
		t.Errorf("DisableFIM should mine nothing, got %d pairs", got)
	}
}

func TestReplayTraceSyntheticGuarantee(t *testing.T) {
	// The §V-C scenario at M=1: 5 blocks per 0.133 ms interval, batch
	// arrivals, interval-aligned design-theoretic retrieval. Every request
	// must meet the guarantee (response <= interval) with no delays.
	tr, err := trace.Synthetic(trace.SyntheticConfig{
		IntervalMS: 0.133, BlocksPerInterval: 5, TotalRequests: 5000, PoolSize: 36, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Design: design.Paper931(), Mode: IntervalAligned, DisableFIM: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.ReplayTrace(tr)
	if rep.Requests != 5000 {
		t.Fatalf("replayed %d requests, want 5000", rep.Requests)
	}
	if rep.MaxResponse > 0.133+1e-9 {
		t.Errorf("max response %g exceeds interval guarantee", rep.MaxResponse)
	}
	if rep.DelayedPct > 0.2 {
		t.Errorf("delayed %.2f%%, want ~0 (batches within S)", rep.DelayedPct)
	}
}

func TestReplayTraceM2Guarantee(t *testing.T) {
	// 14 blocks per 0.266 ms with M=2: responses within 2 accesses.
	tr, err := trace.Synthetic(trace.SyntheticConfig{
		IntervalMS: 0.266, BlocksPerInterval: 14, TotalRequests: 2800, PoolSize: 36, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Design: design.Paper931(), M: 2, IntervalMS: 0.266, Mode: IntervalAligned, DisableFIM: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.ReplayTrace(tr)
	if rep.MaxResponse > 0.266+1e-9 {
		t.Errorf("max response %g exceeds 2-access guarantee", rep.MaxResponse)
	}
	if rep.AvgResponse <= service || rep.AvgResponse >= 2*service {
		t.Errorf("avg response %g outside (1,2) access range", rep.AvgResponse)
	}
}

func TestReplayTraceOnlineFlatResponse(t *testing.T) {
	// Online deterministic QoS: post-admission response is always exactly
	// one service time (the flat bottom line of Figs 8–9).
	tr, err := trace.ExchangeLike(7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := detSystem(t)
	rep := s.ReplayTrace(tr)
	if rep.Requests < 1000 {
		t.Fatalf("trace too small: %d", rep.Requests)
	}
	if math.Abs(rep.MaxResponse-service) > 1e-9 {
		t.Errorf("max response %g, want flat %g", rep.MaxResponse, service)
	}
	if rep.DelayedPct <= 0 {
		t.Error("expected some delayed requests under bursty load")
	}
	if rep.AvgDelay <= 0 {
		t.Error("delayed requests should have positive delay")
	}
}

func TestReplayOriginalExceedsGuarantee(t *testing.T) {
	tr, err := trace.ExchangeLike(7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayOriginal(tr, 9, service)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxResponse <= service+1e-9 {
		t.Error("original stand should violate the guarantee under bursts")
	}
	if rep.AvgResponse < service {
		t.Error("avg response below service time is impossible")
	}
}

func TestReplayOriginalValidation(t *testing.T) {
	if _, err := ReplayOriginal(&trace.Trace{}, 0, 1); err == nil {
		t.Error("devices=0 should fail")
	}
}

func TestStatisticalReducesDelays(t *testing.T) {
	tr, err := trace.ExchangeLike(11, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	det := detSystem(t)
	detRep := det.ReplayTrace(tr)

	tab := &sampling.Table{N: 9, P: make([]float64, 30)}
	for i := range tab.P {
		tab.P[i] = 1 // permissive: everything admitted when over capacity
	}
	st, err := New(Config{Design: design.Paper931(), Epsilon: 0.4, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	stRep := st.ReplayTrace(tr)
	if stRep.DelayedPct >= detRep.DelayedPct {
		t.Errorf("statistical delayed%% %.2f should be below deterministic %.2f",
			stRep.DelayedPct, detRep.DelayedPct)
	}
	if stRep.AvgResponse < detRep.AvgResponse {
		t.Errorf("statistical avg response %.4f should be >= deterministic %.4f (queueing allowed)",
			stRep.AvgResponse, detRep.AvgResponse)
	}
}

func TestAlignedDelaysExceedOnline(t *testing.T) {
	// Fig 12: interval alignment adds delay that online retrieval avoids.
	tr, err := trace.TPCELike(5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	on, err := New(Config{Design: design.Paper1331()})
	if err != nil {
		t.Fatal(err)
	}
	onRep := on.ReplayTrace(tr)
	al, err := New(Config{Design: design.Paper1331(), Mode: IntervalAligned})
	if err != nil {
		t.Fatal(err)
	}
	alRep := al.ReplayTrace(tr)
	if alRep.AvgDelayAll <= onRep.AvgDelayAll {
		t.Errorf("aligned avg delay %.4f should exceed online %.4f (over all requests)",
			alRep.AvgDelayAll, onRep.AvgDelayAll)
	}
	if alRep.DelayedPct <= onRep.DelayedPct {
		t.Errorf("aligned delayed%% %.2f should exceed online %.2f", alRep.DelayedPct, onRep.DelayedPct)
	}
}

func TestResetClearsState(t *testing.T) {
	s := detSystem(t)
	for i := int64(0); i < 8; i++ {
		s.Submit(0, i)
	}
	s.Reset()
	out := s.Submit(0, 0)
	if out.Delayed {
		t.Error("after Reset the first request should be immediate")
	}
}

func TestModeString(t *testing.T) {
	if Online.String() != "online" || IntervalAligned.String() != "interval-aligned" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should format")
	}
}

func TestFIMMatchReported(t *testing.T) {
	tr, err := trace.TPCELike(9, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Design: design.Paper1331()})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.ReplayTrace(tr)
	if len(rep.Intervals) != 6 {
		t.Fatalf("got %d intervals, want 6", len(rep.Intervals))
	}
	if rep.Intervals[0].FIMMatchPct != 0 {
		t.Error("first interval has no mining history; match must be 0")
	}
	// TPC-E-like: strong hot-set persistence → high match afterwards.
	var mean float64
	for _, iv := range rep.Intervals[1:] {
		mean += iv.FIMMatchPct
	}
	mean /= float64(len(rep.Intervals) - 1)
	if mean < 50 {
		t.Errorf("TPC-E mean FIM match %.1f%%, want high (paper: ~87%%)", mean)
	}
}

func BenchmarkSubmit(b *testing.B) {
	s, err := New(Config{Design: design.Paper931()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(float64(i)*0.05, int64(i%1000))
	}
}

func BenchmarkReplayExchangeTiny(b *testing.B) {
	tr, err := trace.ExchangeLike(1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := New(Config{Design: design.Paper931()})
		s.ReplayTrace(tr)
	}
}

func TestSubmitWriteUpdatesAllReplicas(t *testing.T) {
	s := detSystem(t)
	out := s.SubmitWrite(0, 5)
	if out.Rejected || out.Delayed {
		t.Fatalf("first write should be immediate: %+v", out)
	}
	// The write occupies all three replicas until WriteServiceMS.
	if math.Abs(out.Response()-flashsim.DefaultWriteLatency) > 1e-9 {
		t.Errorf("write response %.4f, want %.4f", out.Response(), flashsim.DefaultWriteLatency)
	}
	// A read of the same block right after must wait for a replica.
	rd := s.Submit(0.001, 5)
	if !rd.Delayed {
		t.Error("read during in-flight write to all replicas should be delayed")
	}
	if rd.Admitted < flashsim.DefaultWriteLatency-1e-9 {
		t.Errorf("read admitted at %.4f, want >= write completion %.4f", rd.Admitted, flashsim.DefaultWriteLatency)
	}
}

func TestSubmitWriteConsumesCSlots(t *testing.T) {
	// S=5, c=3: one write leaves room for only 2 more slots in the window.
	s := detSystem(t)
	s.SubmitWrite(0, 0)
	r1 := s.Submit(0, 7) // distinct block, idle devices exist
	r2 := s.Submit(0, 14)
	r3 := s.Submit(0, 21)
	if r1.Delayed || r2.Delayed {
		t.Errorf("two reads should fit after one write: %+v %+v", r1, r2)
	}
	if !r3.Delayed {
		t.Error("third read should exceed the window budget (3+3 > 5)")
	}
}

func TestSubmitWriteRejectPolicy(t *testing.T) {
	s, err := New(Config{Design: design.Paper931(), Policy: admission.Reject})
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitWrite(0, 0)
	s.SubmitWrite(0, 7) // 6 > 5 slots: second write cannot fit
	out := s.SubmitWrite(0, 14)
	if !out.Rejected {
		t.Errorf("third write should be rejected: %+v", out)
	}
}

// TestStatisticalViolationBound checks the statistical QoS contract: the
// fraction of T-windows whose admitted requests were not served within the
// deterministic guarantee stays bounded by epsilon (plus sampling slack).
// Violations only happen on over-admitted (statistical-path) requests, and
// the controller admits those only while Q < epsilon.
func TestStatisticalViolationBound(t *testing.T) {
	tr, err := trace.ExchangeLike(13, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := sampling.Estimate(base.Allocator(), sampling.Options{MaxK: 25, Trials: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Mid-range epsilon from the active region.
	const eps = 0.002
	sys, err := New(Config{Design: design.Paper931(), Epsilon: eps, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	violWindows := map[int64]bool{}
	var lastWindow int64
	for _, r := range tr.Records {
		out := sys.Submit(r.Arrival, r.Block)
		w := int64(out.Admitted / 0.133)
		if w > lastWindow {
			lastWindow = w
		}
		if out.Response() > service+1e-9 {
			violWindows[w] = true
		}
	}
	if lastWindow == 0 {
		t.Fatal("no windows observed")
	}
	// The contract the mechanism actually promises: the modeled violation
	// probability Q (over all encountered intervals, empty ones included,
	// matching the paper's N_t) stays below epsilon. Realized violations
	// can exceed Q because the request-size model does not see which
	// blocks conflict — the paper's formula shares this approximation —
	// but they must stay the same order of magnitude.
	if q := sys.Q(); q >= eps {
		t.Errorf("controller Q = %.5f, must stay below epsilon %.3f", q, eps)
	}
	rate := float64(len(violWindows)) / float64(lastWindow+1)
	if rate > 0.02 {
		t.Errorf("realized violation rate %.5f implausibly high for epsilon %.3f", rate, eps)
	}
	if len(violWindows) == 0 {
		t.Error("expected some over-admissions at this epsilon (tradeoff should engage)")
	}
}

func TestSubmitBatchJointOptimal(t *testing.T) {
	s := detSystem(t)
	// Five blocks whose first copies all collide on device 0: the joint
	// batch must remap to one access (per-request OLR might not).
	blocks := []int64{0, 3, 6, 9, 27} // design rows with first copy 0 under modulo
	outs := s.SubmitBatch(0, blocks)
	if len(outs) != 5 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Rejected || o.Delayed {
			t.Errorf("batch request %d not admitted cleanly: %+v", i, o)
		}
		if o.Response() > service+1e-9 {
			t.Errorf("batch request %d response %.6f exceeds one access", i, o.Response())
		}
	}
}

func TestSubmitBatchOverflow(t *testing.T) {
	s := detSystem(t)
	blocks := make([]int64, 8)
	for i := range blocks {
		blocks[i] = int64(i)
	}
	outs := s.SubmitBatch(0, blocks)
	delayed := 0
	for _, o := range outs {
		if o.Delayed {
			delayed++
		}
	}
	if delayed != 3 {
		t.Errorf("batch of 8 on S=5: %d delayed, want 3", delayed)
	}
	if s.SubmitBatch(0, nil) != nil {
		t.Error("empty batch should return nil")
	}
}

// Property: under random interleavings of reads, writes and batches, the
// deterministic system never admits more than S slots per window, never
// rejects under the delay policy, and every admitted read's post-admission
// response is exactly one service time (writes: one program time).
func TestQuickCoreInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Design: design.Paper931(), DisableFIM: true})
		if err != nil {
			return false
		}
		tNow := 0.0
		winSlots := map[int64]int{}
		window := func(at float64) int64 { return int64(at/0.133 + 1e-6) }
		for i := 0; i < 120; i++ {
			tNow += rng.Float64() * 0.1
			switch rng.Intn(3) {
			case 0:
				out := s.Submit(tNow, rng.Int63n(500))
				if out.Rejected || out.Admitted < tNow-1e-9 {
					return false
				}
				if math.Abs(out.Response()-service) > 1e-9 {
					return false
				}
				winSlots[window(out.Admitted)]++
			case 1:
				out := s.SubmitWrite(tNow, rng.Int63n(500))
				if out.Rejected {
					return false
				}
				if math.Abs(out.Response()-flashsim.DefaultWriteLatency) > 1e-9 {
					return false
				}
				winSlots[window(out.Admitted)] += 3
			case 2:
				n := 1 + rng.Intn(4)
				blocks := make([]int64, n)
				for j := range blocks {
					blocks[j] = rng.Int63n(500)
				}
				for _, out := range s.SubmitBatch(tNow, blocks) {
					if out.Rejected {
						return false
					}
					winSlots[window(out.Admitted)]++
				}
			}
		}
		for _, slots := range winSlots {
			if slots > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReplayTraceMixedWrites(t *testing.T) {
	tr, err := trace.Generate(trace.WorkloadConfig{
		Name: "mixed", Intervals: 4, IntervalMS: 50,
		RatePerSec: []float64{4000, 4000, 4000, 4000},
		Volumes:    9, Universe: 2000, HotBlocks: 50,
		HotFrac: 0.5, HotCarry: 0.5, ZipfS: 1.3, WriteFrac: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := detSystem(t)
	rep := s.ReplayTrace(tr)
	if rep.WriteRequests == 0 {
		t.Fatal("no writes replayed")
	}
	frac := float64(rep.WriteRequests) / float64(rep.WriteRequests+rep.Requests)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("write fraction %.2f, want ~0.2", frac)
	}
	// Reads keep the flat guarantee; writes take the program time.
	if rep.MaxResponse > service+1e-9 {
		t.Errorf("read max response %.4f broke the guarantee", rep.MaxResponse)
	}
	if rep.WriteAvgResp < flashsim.DefaultWriteLatency-1e-9 {
		t.Errorf("write avg response %.4f below program time", rep.WriteAvgResp)
	}
	// Writes occupying all replicas inflate read delays vs a read-only run.
	reads := &trace.Trace{Name: "ro", IntervalMS: tr.IntervalMS}
	for _, r := range tr.Records {
		if !r.Write {
			reads.Records = append(reads.Records, r)
		}
	}
	s2 := detSystem(t)
	ro := s2.ReplayTrace(reads)
	if rep.DelayedPct < ro.DelayedPct {
		t.Errorf("mixed read delays %.2f%% below read-only %.2f%% (writes should add contention)",
			rep.DelayedPct, ro.DelayedPct)
	}
}
