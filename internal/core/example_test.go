package core_test

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/design"
)

// A minimal QoS system: submit reads, observe the guarantee.
func ExampleSystem_submit() {
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("admission limit S:", sys.S())
	out := sys.Submit(0, 42)
	fmt.Printf("response %.6f ms, delayed=%v\n", out.Response(), out.Delayed)
	// Output:
	// admission limit S: 5
	// response 0.132507 ms, delayed=false
}

// Over-capacity requests are delayed to the next interval.
func ExampleSystem_delay() {
	sys, _ := core.New(core.Config{Design: design.Paper931()})
	for i := int64(0); i < 5; i++ {
		sys.Submit(0, i*7)
	}
	out := sys.Submit(0, 99) // sixth concurrent request: S = 5 exhausted
	fmt.Printf("delayed=%v to t=%.3f ms\n", out.Delayed, out.Admitted)
	// Output:
	// delayed=true to t=0.133 ms
}
