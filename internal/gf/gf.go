// Package gf implements arithmetic in finite (Galois) fields GF(p) and
// GF(p^k). It is used by the design package to construct projective planes
// PG(2, q), which yield (q²+q+1, q+1, 1) combinatorial designs suitable for
// replicated declustering with c = q+1 copies.
//
// Elements of GF(p^k) are represented as integers in [0, p^k): the base-p
// digits of the integer are the coefficients of a polynomial over GF(p),
// least-significant digit first. Arithmetic is performed modulo a monic
// irreducible polynomial of degree k found by exhaustive search, which is
// fast for the small fields used in design construction (q ≤ a few hundred).
package gf

import (
	"errors"
	"fmt"
)

// Field is a finite field of order p^k.
type Field struct {
	p     int   // characteristic (prime)
	k     int   // extension degree
	order int   // p^k
	irred []int // monic irreducible polynomial of degree k, coefficients over GF(p), len k+1; nil when k == 1
	// Multiplication and inverse tables, built lazily for extension fields.
	mulTab []int // order*order entries, nil for prime fields
	invTab []int // order entries (invTab[0] unused)
}

// ErrNotPrime is returned when the requested characteristic is not prime.
var ErrNotPrime = errors.New("gf: characteristic is not prime")

// ErrBadDegree is returned when the requested extension degree is < 1.
var ErrBadDegree = errors.New("gf: extension degree must be >= 1")

// IsPrime reports whether n is a prime number. Deterministic trial division;
// intended for the small orders used in design construction.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// FactorPrimePower decomposes n as p^k with p prime. It returns an error if
// n is not a prime power.
func FactorPrimePower(n int) (p, k int, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("gf: %d is not a prime power", n)
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			p = d
			for n > 1 {
				if n%p != 0 {
					return 0, 0, fmt.Errorf("gf: %d is not a prime power", n)
				}
				n /= p
				k++
			}
			return p, k, nil
		}
	}
	return n, 1, nil // n itself is prime
}

// New returns the finite field GF(p^k).
func New(p, k int) (*Field, error) {
	if !IsPrime(p) {
		return nil, fmt.Errorf("%w: %d", ErrNotPrime, p)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadDegree, k)
	}
	order := 1
	for i := 0; i < k; i++ {
		order *= p
	}
	f := &Field{p: p, k: k, order: order}
	if k > 1 {
		irr, err := findIrreducible(p, k)
		if err != nil {
			return nil, err
		}
		f.irred = irr
		f.buildTables()
	}
	return f, nil
}

// NewOrder returns the finite field of the given order, which must be a
// prime power.
func NewOrder(q int) (*Field, error) {
	p, k, err := FactorPrimePower(q)
	if err != nil {
		return nil, err
	}
	return New(p, k)
}

// Order returns p^k, the number of elements in the field.
func (f *Field) Order() int { return f.order }

// Characteristic returns the prime p.
func (f *Field) Characteristic() int { return f.p }

// Degree returns the extension degree k.
func (f *Field) Degree() int { return f.k }

// Irreducible returns a copy of the modulus polynomial for extension fields,
// or nil for prime fields. Coefficients are least-significant first.
func (f *Field) Irreducible() []int {
	if f.irred == nil {
		return nil
	}
	out := make([]int, len(f.irred))
	copy(out, f.irred)
	return out
}

func (f *Field) check(a int) {
	if a < 0 || a >= f.order {
		panic(fmt.Sprintf("gf: element %d out of range [0,%d)", a, f.order))
	}
}

// Add returns a + b in the field.
func (f *Field) Add(a, b int) int {
	f.check(a)
	f.check(b)
	if f.k == 1 {
		return (a + b) % f.p
	}
	// Digit-wise addition mod p.
	sum := 0
	mult := 1
	for i := 0; i < f.k; i++ {
		da, db := a%f.p, b%f.p
		a /= f.p
		b /= f.p
		sum += ((da + db) % f.p) * mult
		mult *= f.p
	}
	return sum
}

// Neg returns the additive inverse of a.
func (f *Field) Neg(a int) int {
	f.check(a)
	if f.k == 1 {
		return (f.p - a) % f.p
	}
	out := 0
	mult := 1
	for i := 0; i < f.k; i++ {
		d := a % f.p
		a /= f.p
		out += ((f.p - d) % f.p) * mult
		mult *= f.p
	}
	return out
}

// Sub returns a - b in the field.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a * b in the field.
func (f *Field) Mul(a, b int) int {
	f.check(a)
	f.check(b)
	if f.k == 1 {
		return (a * b) % f.p
	}
	return f.mulTab[a*f.order+b]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a int) int {
	f.check(a)
	if a == 0 {
		panic("gf: inverse of zero")
	}
	if f.k == 1 {
		// Extended Euclid on (a, p).
		g, x, _ := egcd(a, f.p)
		if g != 1 {
			panic("gf: non-invertible element in prime field")
		}
		return ((x % f.p) + f.p) % f.p
	}
	return f.invTab[a]
}

// Div returns a / b. It panics if b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Pow returns a^e for e >= 0 (a^0 == 1, including 0^0 by convention).
func (f *Field) Pow(a, e int) int {
	if e < 0 {
		panic("gf: negative exponent")
	}
	result := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Elements returns all field elements 0..order-1.
func (f *Field) Elements() []int {
	out := make([]int, f.order)
	for i := range out {
		out[i] = i
	}
	return out
}

// PrimitiveElement returns a generator of the multiplicative group.
func (f *Field) PrimitiveElement() int {
	n := f.order - 1
	factors := distinctPrimeFactors(n)
	for g := 1; g < f.order; g++ {
		ok := true
		for _, q := range factors {
			if f.Pow(g, n/q) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	panic("gf: no primitive element found") // unreachable for a valid field
}

func distinctPrimeFactors(n int) []int {
	var out []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

func egcd(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := egcd(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// --- Extension-field internals ---

// polyToInt encodes polynomial coefficients (LSB first, over GF(p)) as an int.
func polyToInt(coeffs []int, p int) int {
	out := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		out = out*p + coeffs[i]
	}
	return out
}

// intToPoly decodes an int into k polynomial coefficients.
func intToPoly(v, p, k int) []int {
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = v % p
		v /= p
	}
	return out
}

// polyMulMod multiplies two degree-<k polynomials over GF(p) and reduces
// modulo the monic irreducible polynomial irr (degree k).
func polyMulMod(a, b, irr []int, p, k int) []int {
	prod := make([]int, 2*k-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			prod[i+j] = (prod[i+j] + ai*bj) % p
		}
	}
	// Reduce: for each high-degree term x^(k+d), substitute using
	// x^k = -(irr[0] + irr[1] x + ... + irr[k-1] x^(k-1)).
	for d := len(prod) - 1; d >= k; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for j := 0; j < k; j++ {
			// x^d = x^(d-k) * x^k = x^(d-k) * (-(irr[j] x^j ...))
			prod[d-k+j] = ((prod[d-k+j]-c*irr[j])%p + p*p) % p
		}
	}
	return prod[:k]
}

// isIrreducible reports whether the monic polynomial poly (degree k,
// LSB-first with poly[k] == 1) is irreducible over GF(p), by checking that it
// has no roots (degree 2, 3) and no monic factors of degree <= k/2 otherwise.
func isIrreducible(poly []int, p, k int) bool {
	// Quick root check covers factors of degree 1.
	for x := 0; x < p; x++ {
		v := 0
		for i := k; i >= 0; i-- {
			v = (v*x + poly[i]) % p
		}
		if v == 0 {
			return false
		}
	}
	if k <= 3 {
		return true // no linear factors => irreducible for deg 2, 3
	}
	// Trial division by all monic polynomials of degree d in [2, k/2].
	for d := 2; d <= k/2; d++ {
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for v := 0; v < count; v++ {
			div := append(intToPoly(v, p, d), 1) // monic degree-d
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic polynomial a divides polynomial b over GF(p).
func polyDivides(a, b []int, p int) bool {
	rem := make([]int, len(b))
	copy(rem, b)
	da, db := len(a)-1, len(b)-1
	for d := db; d >= da; d-- {
		c := rem[d]
		if c == 0 {
			continue
		}
		for j := 0; j <= da; j++ {
			rem[d-da+j] = ((rem[d-da+j]-c*a[j])%p + p*p) % p
		}
	}
	for _, r := range rem {
		if r != 0 {
			return false
		}
	}
	return true
}

// findIrreducible searches for a monic irreducible polynomial of degree k
// over GF(p). The search is exhaustive over the p^k monic candidates; the
// density of irreducible polynomials (~1/k) makes this fast for small fields.
func findIrreducible(p, k int) ([]int, error) {
	count := 1
	for i := 0; i < k; i++ {
		count *= p
	}
	for v := 0; v < count; v++ {
		cand := append(intToPoly(v, p, k), 1)
		if cand[0] == 0 {
			continue // divisible by x
		}
		if isIrreducible(cand, p, k) {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
}

func (f *Field) buildTables() {
	n := f.order
	f.mulTab = make([]int, n*n)
	for a := 0; a < n; a++ {
		pa := intToPoly(a, f.p, f.k)
		for b := a; b < n; b++ {
			pb := intToPoly(b, f.p, f.k)
			v := polyToInt(polyMulMod(pa, pb, f.irred, f.p, f.k), f.p)
			f.mulTab[a*n+b] = v
			f.mulTab[b*n+a] = v
		}
	}
	f.invTab = make([]int, n)
	for a := 1; a < n; a++ {
		if f.invTab[a] != 0 {
			continue
		}
		for b := 1; b < n; b++ {
			if f.mulTab[a*n+b] == 1 {
				f.invTab[a] = b
				f.invTab[b] = a
				break
			}
		}
		if f.invTab[a] == 0 {
			panic("gf: element without inverse; modulus not irreducible")
		}
	}
}
