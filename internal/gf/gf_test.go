package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 97, 101}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	composites := []int{-3, 0, 1, 4, 6, 8, 9, 10, 12, 15, 25, 49, 91, 100}
	for _, n := range composites {
		if IsPrime(n) {
			t.Errorf("IsPrime(%d) = true, want false", n)
		}
	}
}

func TestFactorPrimePower(t *testing.T) {
	cases := []struct {
		n, p, k int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {8, 2, 3, true},
		{9, 3, 2, true}, {27, 3, 3, true}, {25, 5, 2, true}, {49, 7, 2, true},
		{121, 11, 2, true}, {13, 13, 1, true},
		{1, 0, 0, false}, {6, 0, 0, false}, {12, 0, 0, false}, {100, 0, 0, false},
	}
	for _, c := range cases {
		p, k, err := FactorPrimePower(c.n)
		if c.ok && (err != nil || p != c.p || k != c.k) {
			t.Errorf("FactorPrimePower(%d) = (%d,%d,%v), want (%d,%d,nil)", c.n, p, k, err, c.p, c.k)
		}
		if !c.ok && err == nil {
			t.Errorf("FactorPrimePower(%d) succeeded, want error", c.n)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(4, 1); err == nil {
		t.Error("New(4,1) should fail: 4 not prime")
	}
	if _, err := New(5, 0); err == nil {
		t.Error("New(5,0) should fail: bad degree")
	}
	if _, err := NewOrder(12); err == nil {
		t.Error("NewOrder(12) should fail: not a prime power")
	}
}

// checkFieldAxioms verifies the field axioms exhaustively for small fields.
func checkFieldAxioms(t *testing.T, f *Field) {
	t.Helper()
	n := f.Order()
	// Additive and multiplicative identity.
	for a := 0; a < n; a++ {
		if f.Add(a, 0) != a {
			t.Fatalf("a+0 != a for a=%d", a)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if f.Mul(a, 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("a + (-a) != 0 for a=%d", a)
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	// Commutativity, associativity, distributivity (exhaustive for small n).
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("add not commutative at (%d,%d)", a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("mul not commutative at (%d,%d)", a, b)
			}
			for c := 0; c < n; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("add not associative at (%d,%d,%d)", a, b, c)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("mul not associative at (%d,%d,%d)", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("not distributive at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestFieldAxiomsPrime(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 11} {
		f, err := New(p, 1)
		if err != nil {
			t.Fatalf("New(%d,1): %v", p, err)
		}
		checkFieldAxioms(t, f)
	}
}

func TestFieldAxiomsExtension(t *testing.T) {
	cases := [][2]int{{2, 2}, {2, 3}, {3, 2}, {2, 4}, {5, 2}}
	for _, c := range cases {
		f, err := New(c[0], c[1])
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c[0], c[1], err)
		}
		checkFieldAxioms(t, f)
	}
}

func TestSubDiv(t *testing.T) {
	f, _ := New(3, 2) // GF(9)
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if f.Add(f.Sub(a, b), b) != a {
				t.Fatalf("(a-b)+b != a at (%d,%d)", a, b)
			}
			if b != 0 && f.Mul(f.Div(a, b), b) != a {
				t.Fatalf("(a/b)*b != a at (%d,%d)", a, b)
			}
		}
	}
}

func TestPow(t *testing.T) {
	f, _ := New(7, 1)
	for a := 1; a < 7; a++ {
		// Fermat: a^(p-1) == 1.
		if got := f.Pow(a, 6); got != 1 {
			t.Errorf("Pow(%d, 6) = %d, want 1", a, got)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("Pow(0,0) should be 1 by convention")
	}
	if f.Pow(3, 1) != 3 {
		t.Error("Pow(3,1) should be 3")
	}
}

func TestPrimitiveElement(t *testing.T) {
	for _, q := range []int{4, 5, 7, 8, 9, 13, 16, 25} {
		f, err := NewOrder(q)
		if err != nil {
			t.Fatalf("NewOrder(%d): %v", q, err)
		}
		g := f.PrimitiveElement()
		// g must generate all q-1 nonzero elements.
		seen := make(map[int]bool)
		x := 1
		for i := 0; i < q-1; i++ {
			x = f.Mul(x, g)
			if seen[x] {
				t.Fatalf("GF(%d): generator %d repeats element %d early", q, g, x)
			}
			seen[x] = true
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): generator %d produced %d elements, want %d", q, g, len(seen), q-1)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f, _ := New(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	f.Inv(0)
}

func TestOutOfRangePanics(t *testing.T) {
	f, _ := New(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("Add with out-of-range element should panic")
		}
	}()
	f.Add(5, 0)
}

func TestIrreducibleExposed(t *testing.T) {
	f, _ := New(2, 3) // GF(8)
	irr := f.Irreducible()
	if len(irr) != 4 {
		t.Fatalf("GF(8) modulus has %d coefficients, want 4", len(irr))
	}
	if irr[3] != 1 {
		t.Error("modulus not monic")
	}
	fp, _ := New(7, 1)
	if fp.Irreducible() != nil {
		t.Error("prime field should have nil modulus")
	}
}

// Property: (a+b) and (a*b) stay in range, and a+b-b == a, for GF(9) and GF(8).
func TestQuickFieldClosure(t *testing.T) {
	for _, q := range []int{8, 9, 13} {
		f, err := NewOrder(q)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(x, y uint8) bool {
			a := int(x) % q
			b := int(y) % q
			s := f.Add(a, b)
			m := f.Mul(a, b)
			if s < 0 || s >= q || m < 0 || m >= q {
				return false
			}
			return f.Sub(s, b) == a
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("GF(%d) closure property failed: %v", q, err)
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	// round trip int <-> poly
	for v := 0; v < 27; v++ {
		p := intToPoly(v, 3, 3)
		if got := polyToInt(p, 3); got != v {
			t.Errorf("roundtrip %d -> %v -> %d", v, p, got)
		}
	}
	// x * x == x^2 in GF(2^3) with any irreducible modulus of degree 3.
	irr, err := findIrreducible(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []int{0, 1, 0} // x
	got := polyMulMod(x, x, irr, 2, 3)
	want := []int{0, 0, 1} // x^2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x*x = %v, want %v", got, want)
		}
	}
}

func BenchmarkMulGF9(b *testing.B) {
	f, _ := New(3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(i%9, (i+3)%9)
	}
}

func BenchmarkNewGF16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(2, 4); err != nil {
			b.Fatal(err)
		}
	}
}
