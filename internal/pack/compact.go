package pack

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compact rewrites device dev's volume with only its live needles —
// superseded records are dropped — and atomically swaps it in place
// (write to a temp file, fsync, rename over the volume, fsync the
// directory). Concurrent gets and puts on other devices proceed; the
// device being compacted blocks for the duration.
func (s *Store) Compact(dev int) error {
	if s.closed.Load() {
		return ErrClosed
	}
	v, err := s.vol(dev)
	if err != nil {
		return err
	}
	return v.compact(s.opts.MaxPayload)
}

// CompactAll compacts every volume whose garbage exceeds minGarbage bytes.
func (s *Store) CompactAll(minGarbage int64) error {
	for d := range s.vols {
		if s.Stats(d).Garbage <= minGarbage {
			continue
		}
		if err := s.Compact(d); err != nil {
			return err
		}
	}
	return nil
}

func (v *volume) compact(maxPayload int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	tmpPath := v.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pack: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	// Copy live needles in file order — sequential reads, and the rewritten
	// volume keeps the original append order.
	type ent struct {
		block int64
		r     rec
	}
	ents := make([]ent, 0, len(v.index))
	for b, r := range v.index {
		ents = append(ents, ent{b, r})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].r.off < ents[j].r.off })
	var (
		off      int64
		buf      []byte
		newIndex = make(map[int64]rec, len(ents))
	)
	for _, e := range ents {
		total := needleHeaderSize + int(e.r.size)
		if total > cap(buf) {
			buf = make([]byte, total)
		}
		b := buf[:total]
		if _, err := v.f.ReadAt(b, e.r.off); err != nil {
			return fail(fmt.Errorf("pack: compact read %s at %d: %w", filepath.Base(v.path), e.r.off, err))
		}
		// A live needle that no longer validates is real corruption, not
		// garbage — keep the volume as-is and surface it.
		if _, _, _, err := DecodeNeedle(b, maxPayload); err != nil {
			return fail(fmt.Errorf("pack: compact %s block %d at %d: %w", filepath.Base(v.path), e.block, e.r.off, err))
		}
		if _, err := tmp.WriteAt(b, off); err != nil {
			return fail(fmt.Errorf("pack: compact write: %w", err))
		}
		newIndex[e.block] = rec{off: off, size: e.r.size}
		off += int64(total)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pack: compact fsync: %w", err))
	}
	if err := os.Rename(tmpPath, v.path); err != nil {
		return fail(fmt.Errorf("pack: compact rename: %w", err))
	}
	if err := syncDir(filepath.Dir(v.path)); err != nil {
		// The rename itself succeeded; the swapped file is live. Report the
		// directory sync failure without abandoning the new handle.
		v.swapCompacted(tmp, newIndex, off)
		return err
	}
	v.swapCompacted(tmp, newIndex, off)
	return nil
}

// swapCompacted installs the rewritten file. Everything in it was fsynced
// before the rename, so the durable watermark jumps to the new size and
// the generation bump releases Puts waiting on old-file offsets (their
// needles were live, hence carried over and already durable).
func (v *volume) swapCompacted(tmp *os.File, newIndex map[int64]rec, size int64) {
	old := v.f
	v.f = tmp
	v.index = newIndex
	v.size = size
	v.garbage = 0
	v.sm.Lock()
	v.gen++
	v.synced = size
	v.sm.Unlock()
	v.cond.Broadcast()
	old.Close()
}
