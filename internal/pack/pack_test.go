package pack

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fastOpts keeps group-commit waits short in tests.
var fastOpts = Options{SyncInterval: time.Millisecond}

func payloadFor(block int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i)*7 + block*13 + 5)
	}
	return b
}

func TestNeedleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 512, 1 << 16} {
		payload := payloadFor(42, n)
		enc := AppendNeedle(nil, 42, payload)
		if len(enc) != needleHeaderSize+n {
			t.Fatalf("encoded size = %d, want %d", len(enc), needleHeaderSize+n)
		}
		block, got, total, err := DecodeNeedle(enc, 0)
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", n, err)
		}
		if block != 42 || total != len(enc) || !bytes.Equal(got, payload) {
			t.Fatalf("decode(%d bytes) = block %d total %d, payload mismatch=%v",
				n, block, total, !bytes.Equal(got, payload))
		}
	}
}

func TestNeedleDecodeErrors(t *testing.T) {
	valid := AppendNeedle(nil, 7, payloadFor(7, 64))
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short header", func(b []byte) []byte { return b[:needleHeaderSize-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrChecksum},
		{"flipped block byte", func(b []byte) []byte { b[5] ^= 1; return b }, ErrChecksum},
		{"oversized length", func(b []byte) []byte { b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0x7F; return b }, ErrTooLarge},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), valid...))
		if _, _, _, err := DecodeNeedle(b, 0); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 4, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for dev := 0; dev < 4; dev++ {
		for b := int64(0); b < 16; b++ {
			if err := s.Put(dev, b, payloadFor(b+int64(dev)*100, 100+int(b))); err != nil {
				t.Fatalf("put dev %d block %d: %v", dev, b, err)
			}
		}
	}
	var dst []byte
	for dev := 0; dev < 4; dev++ {
		for b := int64(0); b < 16; b++ {
			dst, err = s.Get(dev, b, dst[:0])
			if err != nil {
				t.Fatalf("get dev %d block %d: %v", dev, b, err)
			}
			if want := payloadFor(b+int64(dev)*100, 100+int(b)); !bytes.Equal(dst, want) {
				t.Fatalf("dev %d block %d: payload mismatch", dev, b)
			}
		}
	}
	if _, err := s.Get(0, 999, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing block: err = %v, want ErrNotFound", err)
	}
	if s.Has(0, 999) || !s.Has(0, 3) {
		t.Fatal("Has disagrees with contents")
	}
	if got := len(s.Blocks(1, nil)); got != 16 {
		t.Fatalf("Blocks(1) = %d entries, want 16", got)
	}
}

func TestStoreOverwriteAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, 5, payloadFor(1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, 5, payloadFor(2, 128)); err != nil {
		t.Fatal(err)
	}
	if g := s.Stats(1).Garbage; g != int64(needleHeaderSize+64) {
		t.Fatalf("garbage = %d, want %d", g, needleHeaderSize+64)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the index rebuild must surface the latest version only.
	s2, err := Open(dir, 2, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payloadFor(2, 128)) {
		t.Fatal("reopened store served the superseded version")
	}
	if g := s2.Stats(1).Garbage; g != int64(needleHeaderSize+64) {
		t.Fatalf("garbage after reopen = %d, want %d", g, needleHeaderSize+64)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 8; b++ {
		if err := s.Put(0, b, payloadFor(b, 200)); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := s.Stats(0).Bytes
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vol-0000.pack")
	// Torn tail: a header claiming 1000 payload bytes, followed by only 10.
	torn := AppendNeedle(nil, 99, payloadFor(99, 1000))[:needleHeaderSize+10]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(0).Bytes; got != goodSize {
		t.Fatalf("recovered size = %d, want %d (torn tail not truncated)", got, goodSize)
	}
	if fi, _ := os.Stat(path); fi.Size() != goodSize {
		t.Fatalf("file size = %d, want %d", fi.Size(), goodSize)
	}
	if s2.Has(0, 99) {
		t.Fatal("torn needle got indexed")
	}
	for b := int64(0); b < 8; b++ {
		got, err := s2.Get(0, b, nil)
		if err != nil || !bytes.Equal(got, payloadFor(b, 200)) {
			t.Fatalf("block %d did not survive recovery: %v", b, err)
		}
	}
}

func TestRecoveryStopsAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for b := int64(0); b < 4; b++ {
		offsets = append(offsets, s.Stats(0).Bytes)
		if err := s.Put(0, b, payloadFor(b, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a payload byte inside record 2: the scan must keep 0 and 1 and
	// truncate from record 2 on (no framing to resync past a bad CRC).
	path := filepath.Join(dir, "vol-0000.pack")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, offsets[2]+needleHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(0).Bytes; got != offsets[2] {
		t.Fatalf("recovered size = %d, want %d", got, offsets[2])
	}
	for b := int64(0); b < 2; b++ {
		if _, err := s2.Get(0, b, nil); err != nil {
			t.Fatalf("block %d lost: %v", b, err)
		}
	}
	for b := int64(2); b < 4; b++ {
		if s2.Has(0, b) {
			t.Fatalf("block %d survived past the corrupt record", b)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for b := int64(0); b < 32; b++ {
			if err := s.Put(0, b, payloadFor(b+int64(round), 256)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats(0)
	if before.Garbage == 0 {
		t.Fatal("expected garbage before compaction")
	}
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	after := s.Stats(0)
	if after.Garbage != 0 || after.Bytes >= before.Bytes || after.Blocks != 32 {
		t.Fatalf("after compact: %+v (before %+v)", after, before)
	}
	for b := int64(0); b < 32; b++ {
		got, err := s.Get(0, b, nil)
		if err != nil || !bytes.Equal(got, payloadFor(b+3, 256)) {
			t.Fatalf("block %d wrong after compact: %v", b, err)
		}
	}
	// Writes keep working on the swapped file, and the result reopens.
	if err := s.Put(0, 100, payloadFor(100, 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get(0, 100, nil); err != nil || !bytes.Equal(got, payloadFor(100, 64)) {
		t.Fatalf("post-compact write lost: %v", err)
	}
	if got := s2.Stats(0).Blocks; got != 33 {
		t.Fatalf("blocks after reopen = %d, want 33", got)
	}
}

func TestCopy(t *testing.T) {
	s, err := Open(t.TempDir(), 3, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(0, 11, payloadFor(11, 333)); err != nil {
		t.Fatal(err)
	}
	if err := s.Copy(0, 2, 11); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(2, 11, nil)
	if err != nil || !bytes.Equal(got, payloadFor(11, 333)) {
		t.Fatalf("copied block wrong: %v", err)
	}
	if err := s.Copy(1, 2, 11); !errors.Is(err, ErrNotFound) {
		t.Fatalf("copy from empty device: err = %v, want ErrNotFound", err)
	}
}

func TestDeviceBounds(t *testing.T) {
	s, err := Open(t.TempDir(), 2, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(2, 0, nil); err == nil {
		t.Fatal("put on device 2 of 2 succeeded")
	}
	if err := s.Put(-1, 0, nil); err == nil {
		t.Fatal("put on device -1 succeeded")
	}
	if _, err := s.Get(2, 0, nil); err == nil {
		t.Fatal("get on device 2 of 2 succeeded")
	}
	if s.Has(5, 0) || len(s.Blocks(5, nil)) != 0 {
		t.Fatal("Has/Blocks out of range not empty")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	s, err := Open(t.TempDir(), 1, Options{NoSync: true, MaxPayload: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(0, 0, make([]byte, 129)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized put: err = %v, want ErrTooLarge", err)
	}
	if err := s.Put(0, 0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open(t.TempDir(), 1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, 1, payloadFor(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(0, 2, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: err = %v, want ErrClosed", err)
	}
	if err := s.Compact(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: err = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentPutGetCompact(t *testing.T) {
	s, err := Open(t.TempDir(), 2, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const (
		writers = 4
		perW    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				b := int64(w*perW + i)
				if err := s.Put(w%2, b, payloadFor(b, 64+i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, err := s.Get(w%2, b, nil); err != nil || !bytes.Equal(got, payloadFor(b, 64+i)) {
					t.Errorf("get-after-put block %d: %v", b, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := s.Compact(i % 2); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	total := len(s.Blocks(0, nil)) + len(s.Blocks(1, nil))
	if total != writers*perW {
		t.Fatalf("blocks = %d, want %d", total, writers*perW)
	}
}

// garbageStore opens a single-device store and layers overwrites so the
// live set is much smaller than the file — compaction is guaranteed to
// shrink it, which the watermark/generation races below depend on.
func garbageStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for round := 0; round < 3; round++ {
		for b := int64(0); b < 8; b++ {
			if err := s.Put(0, b, payloadFor(b, 128)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestWaitSyncedReleasedByCompaction pins the append/compaction race: a
// compaction completing between append returning and the Put parking on
// the watermark must release the waiter via the generation captured
// inside append's critical section. The end offset describes the
// discarded pre-compaction file and can exceed the rewritten one, so on
// an otherwise idle volume no fsync would ever cover it — a waiter keyed
// on the post-compaction generation would park forever.
func TestWaitSyncedReleasedByCompaction(t *testing.T) {
	s := garbageStore(t, Options{NoSync: true})
	v := s.vols[0]
	end, gen, err := v.append(99, payloadFor(99, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	if sz := s.Stats(0).Bytes; sz >= end {
		t.Fatalf("compaction did not shrink below the captured end (%d >= %d)", sz, end)
	}
	done := make(chan error, 1)
	go func() { done <- v.waitSynced(end, gen) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waitSynced parked forever on a pre-compaction offset")
	}
}

// TestMarkSyncedIgnoresStaleGeneration pins the fsync/compaction race: a
// sync pass captures (end, generation) under the read lock, fsyncs,
// releases the lock, and only then reports. If a compaction commits in
// that window, the completion is stale — end exceeds the rewritten file —
// and advancing the watermark with it would ack later appends below it
// without any fsync covering them.
func TestMarkSyncedIgnoresStaleGeneration(t *testing.T) {
	s := garbageStore(t, Options{NoSync: true})
	v := s.vols[0]
	// What a sync pass would capture just before the fsync.
	v.mu.RLock()
	end, gen := v.size, v.generation()
	v.mu.RUnlock()
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	// The stale completion arrives after the swap.
	v.markSynced(end, gen, nil)
	if got, want := v.syncedEnd(), s.Stats(0).Bytes; got != want {
		t.Fatalf("stale sync completion moved the watermark to %d, want %d (file size)", got, want)
	}
}

func TestManyDevicesNaming(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 12, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for d := 0; d < 12; d++ {
		p := filepath.Join(dir, fmt.Sprintf("vol-%04d.pack", d))
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("volume file missing: %v", err)
		}
	}
}
