package pack

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// rec locates one live needle in the volume file.
type rec struct {
	off  int64  // file offset of the needle header
	size uint32 // payload length
}

// volume is one device's append-only pack file plus its in-memory index.
//
// Locking: mu guards the file handle, size, index, and garbage counter.
// Appends and compaction take it exclusively; gets — and the syncer's
// fsync — take it shared, so reads proceed during an fsync and the file
// handle can never be swapped (by compaction) under a syscall using it.
// The durable watermark (synced/syncErr/gen) lives under its own little
// mutex so Put waiters never hold mu while parked.
type volume struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	size    int64 // append end: every byte below is a valid indexed needle or garbage
	index   map[int64]rec
	garbage int64  // bytes held by superseded needles
	scratch []byte // append-side encode buffer, guarded by mu
	closed  bool

	sm      sync.Mutex // guards the durable watermark; cond.L
	cond    *sync.Cond
	synced  int64  // bytes covered by fsync
	gen     uint64 // bumped by compaction: offsets below synced changed meaning
	syncErr error  // sticky: first fsync failure fails the volume fail-stop
}

func openVolume(path string, maxPayload int) (*volume, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	v := &volume{f: f, path: path, index: make(map[int64]rec)}
	v.cond = sync.NewCond(&v.sm)
	if err := v.recover(maxPayload); err != nil {
		f.Close()
		return nil, err
	}
	v.synced = v.size // everything that survived the scan is on disk
	return v, nil
}

// recover rebuilds the index by scanning needles from offset zero and
// truncates the file at the first record that fails validation — the torn
// tail of an append cut short by a crash. Every record before the failure
// point checksummed, so the re-established invariant is: every byte below
// size belongs to a fully-written needle.
func (v *volume) recover(maxPayload int) error {
	st, err := v.f.Stat()
	if err != nil {
		return fmt.Errorf("pack: %w", err)
	}
	fileSize := st.Size()
	r := bufio.NewReaderSize(io.NewSectionReader(v.f, 0, fileSize), 1<<16)
	var (
		off     int64
		hdr     [needleHeaderSize]byte
		payload []byte
	)
	for off < fileSize {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		if string(hdr[0:4]) != needleMagic {
			break
		}
		length := binary.LittleEndian.Uint32(hdr[12:16])
		if length > uint32(maxPayload) {
			break
		}
		total := int64(needleHeaderSize) + int64(length)
		if total > fileSize-off {
			break
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		p := payload[:length]
		if _, err := io.ReadFull(r, p); err != nil {
			break
		}
		crc := crc32.Update(0, castagnoli, hdr[4:16])
		crc = crc32.Update(crc, castagnoli, p)
		if crc != binary.LittleEndian.Uint32(hdr[16:20]) {
			break
		}
		block := int64(binary.LittleEndian.Uint64(hdr[4:12]))
		if old, ok := v.index[block]; ok {
			v.garbage += int64(needleHeaderSize) + int64(old.size)
		}
		v.index[block] = rec{off: off, size: length}
		off += total
	}
	v.size = off
	if off < fileSize {
		// Drop the torn tail durably before any new append lands after it.
		if err := v.f.Truncate(off); err != nil {
			return fmt.Errorf("pack: truncate %s: %w", filepath.Base(v.path), err)
		}
		if err := v.f.Sync(); err != nil {
			return fmt.Errorf("pack: %w", err)
		}
	}
	return nil
}

// append writes the needle at the current end and indexes it, returning
// the new append end for waitSynced together with the volume generation
// the end belongs to — both captured while mu is held, so a compaction
// (which needs mu exclusively) cannot slide in between and make the pair
// inconsistent. A failed write does not advance size: the torn bytes sit
// past the end, are overwritten by the next append, and would be
// truncated by recovery.
func (v *volume) append(block int64, payload []byte) (end int64, gen uint64, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, 0, ErrClosed
	}
	v.scratch = AppendNeedle(v.scratch[:0], block, payload)
	if _, err := v.f.WriteAt(v.scratch, v.size); err != nil {
		return 0, 0, fmt.Errorf("pack: write %s: %w", filepath.Base(v.path), err)
	}
	if old, ok := v.index[block]; ok {
		v.garbage += int64(needleHeaderSize) + int64(old.size)
	}
	v.index[block] = rec{off: v.size, size: uint32(len(payload))}
	v.size += int64(len(v.scratch))
	return v.size, v.generation(), nil
}

// generation reads the compaction generation. Callers holding mu (even
// shared) observe a stable value: compaction bumps gen only while holding
// mu exclusively.
func (v *volume) generation() uint64 {
	v.sm.Lock()
	defer v.sm.Unlock()
	return v.gen
}

// get reads and re-validates block's needle, appending the payload to dst.
func (v *volume) get(block int64, dst []byte) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	r, ok := v.index[block]
	if !ok {
		return dst, ErrNotFound
	}
	total := needleHeaderSize + int(r.size)
	start := len(dst)
	dst = grow(dst, total)
	buf := dst[start : start+total]
	if _, err := v.f.ReadAt(buf, r.off); err != nil {
		return dst[:start], fmt.Errorf("pack: read %s: %w", filepath.Base(v.path), err)
	}
	got, payload, _, err := DecodeNeedle(buf, int(r.size))
	if err != nil {
		return dst[:start], fmt.Errorf("pack: %s block %d at %d: %w", filepath.Base(v.path), block, r.off, err)
	}
	if got != block {
		return dst[:start], fmt.Errorf("pack: %s block %d at %d: %w (needle holds block %d)",
			filepath.Base(v.path), block, r.off, ErrChecksum, got)
	}
	// Shift the payload over its header; forward copy handles the overlap.
	copy(dst[start:], payload)
	return dst[:start+len(payload)], nil
}

func (v *volume) has(block int64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.index[block]
	return ok
}

func (v *volume) blocks(dst []int64) []int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for b := range v.index {
		dst = append(dst, b)
	}
	return dst
}

func (v *volume) stats() DeviceStats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return DeviceStats{Blocks: len(v.index), Bytes: v.size, Garbage: v.garbage}
}

// syncIfDirty fsyncs under the read lock (so compaction cannot swap the
// handle mid-syscall; concurrent gets proceed, appends briefly queue) and
// advances the durable watermark. The generation is captured under the
// same read lock as end: if a compaction commits between the RUnlock and
// markSynced, the stale (end, gen) pair is discarded there rather than
// advancing the watermark past the rewritten (smaller) file.
func (v *volume) syncIfDirty() {
	v.mu.RLock()
	end := v.size
	gen := v.generation()
	if v.closed || end <= v.syncedEnd() {
		v.mu.RUnlock()
		return
	}
	err := v.f.Sync()
	v.mu.RUnlock()
	v.markSynced(end, gen, err)
}

func (v *volume) syncedEnd() int64 {
	v.sm.Lock()
	defer v.sm.Unlock()
	return v.synced
}

func (v *volume) syncError() error {
	v.sm.Lock()
	defer v.sm.Unlock()
	return v.syncErr
}

// markSynced records that an fsync covered the file up to end (or that it
// failed — sticky, fail-stop) and wakes the Puts parked on the watermark.
// end is only meaningful in the generation it was captured in: if a
// compaction committed since, the offset describes the discarded file, so
// advancing the watermark with it would mark not-yet-fsynced bytes of the
// rewritten file durable. A stale pair is dropped — the compaction that
// invalidated it already set synced to cover everything live. Sync errors
// are recorded regardless of generation: fail-stop stays conservative.
func (v *volume) markSynced(end int64, gen uint64, err error) {
	v.sm.Lock()
	if err != nil {
		if v.syncErr == nil {
			v.syncErr = fmt.Errorf("pack: fsync %s: %w", filepath.Base(v.path), err)
		}
	} else if gen == v.gen && end > v.synced {
		v.synced = end
	}
	v.sm.Unlock()
	v.cond.Broadcast()
}

// waitSynced parks until the durable watermark covers end, where (end,
// gen) is the pair append returned. A compaction generation bump also
// releases the wait: compaction only commits after every live needle —
// including the one this Put appended — is fsynced in the rewritten file,
// so crossing a generation is itself a durability proof (and end, an
// old-file offset, no longer means anything). gen must come from append's
// critical section, not be re-read here: a compaction finishing between
// append and this call would otherwise leave the waiter parked on an
// old-file offset under the post-bump generation, waiting forever.
func (v *volume) waitSynced(end int64, gen uint64) error {
	v.sm.Lock()
	defer v.sm.Unlock()
	for v.syncErr == nil && v.gen == gen && v.synced < end {
		v.cond.Wait()
	}
	return v.syncErr
}

// grow extends b by n bytes in place when capacity allows, reallocating
// with headroom otherwise (append(b, make(...)...) would allocate the
// temporary every call).
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*(len(b)+n))
	copy(nb, b)
	return nb
}
