// Package pack is the file-backed storage engine behind the QoS layer: an
// append-only volume file per device holding CRC-checksummed needle
// records, with an in-memory needle index rebuilt by a tail-validating
// scan on startup.
//
// The design follows the classic pack/needle (a.k.a. haystack/bitcask)
// shape, sized so the declustered c-way replica layout of the QoS engine
// maps onto real per-device I/O:
//
//   - One volume file per device. A block PUT on a replica set becomes one
//     appended needle per replica device, a GET one pread on the chosen
//     device, so device-level QoS decisions exercise device-level media.
//   - Needles are self-describing records (magic / block / length / CRC-32C
//     header, then the payload; see needle.go). Every read re-verifies the
//     checksum, so media corruption surfaces as an error the caller can
//     feed to the health subsystem instead of silently returning garbage.
//   - The block → (offset, length) index lives in memory only. On startup
//     the volume is scanned needle by needle; the scan stops at the first
//     record that fails validation and truncates the file there (the torn
//     tail of a crashed append), so the index invariant — every indexed
//     needle is fully on disk and checksums — is re-established without a
//     separate journal.
//   - Durability is group-commit: appends are acknowledged only once an
//     fsync covers them, and one fsync covers every append that landed in
//     the same sync window (Options.SyncInterval / Options.SyncBytes), so
//     the per-PUT fsync cost amortizes across concurrent writers.
//   - Superseded needles (block overwrites) stay in the file as garbage
//     until Compact rewrites the live set and swaps the volume in place.
//
// All Store methods are safe for concurrent use.
package pack

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors callers branch on. Anything else coming out of Get/Put
// is an I/O or corruption fault and should be treated as a media error.
var (
	// ErrNotFound reports a block with no needle on the device.
	ErrNotFound = errors.New("pack: block not found")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("pack: store closed")
)

// Default tuning (see Options).
const (
	DefaultSyncInterval = 2 * time.Millisecond
	DefaultSyncBytes    = 256 << 10
)

// Options tunes a Store. The zero value selects the documented defaults.
type Options struct {
	// SyncInterval is the group-commit window: appends are acknowledged
	// when the periodic fsync pass covers them, at most this long after
	// they landed. Default 2ms.
	SyncInterval time.Duration
	// SyncBytes triggers an early fsync pass once this many unsynced bytes
	// have accumulated across the store, so a burst of large writes is not
	// held for the full interval. Default 256 KiB.
	SyncBytes int
	// NoSync acknowledges appends without waiting for fsync (benchmarks,
	// throwaway test stores). A crash loses unsynced appends — exactly the
	// data the recovery scan truncates.
	NoSync bool
	// MaxPayload caps one needle's payload. Default DefaultMaxPayload
	// (1 MiB), matching the wire protocol's frame cap.
	MaxPayload int
}

func (o *Options) applyDefaults() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = DefaultSyncBytes
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = DefaultMaxPayload
	}
}

// Store is a set of per-device volumes under one directory.
type Store struct {
	dir  string
	opts Options
	vols []*volume

	dirty  atomic.Int64 // unsynced bytes since the last sync pass
	kick   chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Open creates or reopens a store of `devices` volumes under dir,
// recovering each volume's index with the tail-validating scan.
func Open(dir string, devices int, opts Options) (*Store, error) {
	if devices < 1 {
		return nil, fmt.Errorf("pack: need >= 1 device, got %d", devices)
	}
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		vols: make([]*volume, devices),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	for d := range s.vols {
		v, err := openVolume(filepath.Join(dir, fmt.Sprintf("vol-%04d.pack", d)), opts.MaxPayload)
		if err != nil {
			for _, prev := range s.vols[:d] {
				prev.f.Close()
			}
			return nil, err
		}
		s.vols[d] = v
	}
	if !opts.NoSync {
		// Make the volume files themselves durable directory entries before
		// acknowledging anything stored in them.
		if err := syncDir(dir); err != nil {
			s.Close()
			return nil, err
		}
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// Devices returns the number of volumes.
func (s *Store) Devices() int { return len(s.vols) }

// Dir returns the volume directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) vol(dev int) (*volume, error) {
	if dev < 0 || dev >= len(s.vols) {
		return nil, fmt.Errorf("pack: device %d out of range [0,%d)", dev, len(s.vols))
	}
	return s.vols[dev], nil
}

// Put appends a needle for block on device dev and, unless NoSync is set,
// blocks until a group fsync covers it: when Put returns nil the payload
// is durable on that device.
func (s *Store) Put(dev int, block int64, payload []byte) error {
	v, err := s.vol(dev)
	if err != nil {
		return err
	}
	if len(payload) > s.opts.MaxPayload {
		return fmt.Errorf("%w (%d > %d bytes)", ErrTooLarge, len(payload), s.opts.MaxPayload)
	}
	end, gen, err := v.append(block, payload)
	if err != nil {
		return err
	}
	if s.opts.NoSync {
		v.markSynced(end, gen, nil)
		return nil
	}
	if s.dirty.Add(int64(needleHeaderSize+len(payload))) >= int64(s.opts.SyncBytes) {
		s.kickSync()
	}
	return v.waitSynced(end, gen)
}

// Get appends block's payload on device dev to dst and returns the
// extended slice. On any error dst is returned with its length unchanged.
// The payload's checksum is re-verified on every read; a mismatch is a
// media fault, not ErrNotFound.
func (s *Store) Get(dev int, block int64, dst []byte) ([]byte, error) {
	v, err := s.vol(dev)
	if err != nil {
		return dst, err
	}
	return v.get(block, dst)
}

// Has reports whether device dev holds a needle for block.
func (s *Store) Has(dev int, block int64) bool {
	v, err := s.vol(dev)
	if err != nil {
		return false
	}
	return v.has(block)
}

// Blocks appends the blocks stored on device dev to dst (unordered
// snapshot) — the rebuild scheduler's work-list feed.
func (s *Store) Blocks(dev int, dst []int64) []int64 {
	v, err := s.vol(dev)
	if err != nil {
		return dst
	}
	return v.blocks(dst)
}

// copyBufPool recycles the transfer buffer Copy stages payloads through.
var copyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Copy replicates one block's payload from device `from` to device `to`
// with full Put durability — the primitive reprotect/resilver move bytes
// with.
func (s *Store) Copy(from, to int, block int64) error {
	buf := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(buf)
	b, err := s.Get(from, block, (*buf)[:0])
	*buf = b[:0]
	if err != nil {
		return err
	}
	return s.Put(to, block, b)
}

// DeviceStats reports one volume's space accounting.
type DeviceStats struct {
	Blocks  int   // live needles (index size)
	Bytes   int64 // file size
	Garbage int64 // bytes held by superseded needles
}

// Stats snapshots device dev's space accounting.
func (s *Store) Stats(dev int) DeviceStats {
	v, err := s.vol(dev)
	if err != nil {
		return DeviceStats{}
	}
	return v.stats()
}

// Sync forces a full fsync pass and returns the first volume sync error,
// if any (sync errors are sticky: a volume whose fsync failed refuses
// further acknowledgements).
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.syncPass()
	for _, v := range s.vols {
		if err := v.syncError(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the syncer, flushes every volume, and closes the files.
// Puts acknowledged before Close returns are durable.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if !s.opts.NoSync {
		close(s.stop)
		s.wg.Wait()
	}
	var first error
	for _, v := range s.vols {
		// Setting closed under the volume lock fences later appends and
		// compactions; the final fsync then covers everything that got in
		// before the fence, and the generation captured here stays current.
		v.mu.Lock()
		v.closed = true
		end := v.size
		gen := v.generation()
		v.mu.Unlock()
		var err error
		if !s.opts.NoSync {
			err = v.f.Sync()
		}
		v.markSynced(end, gen, err)
		if cerr := v.f.Close(); cerr != nil && first == nil {
			first = cerr
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// kickSync wakes the syncer early (the byte-threshold path). Non-blocking:
// a pending kick already guarantees a pass.
func (s *Store) kickSync() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// syncLoop is the group-commit pump: one fsync pass per SyncInterval tick
// (or early kick) covers every append that landed since the previous pass.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		case <-s.kick:
		}
		s.syncPass()
	}
}

// syncPass fsyncs every volume with unsynced appends and advances its
// durable watermark, releasing the Puts waiting on it.
func (s *Store) syncPass() {
	s.dirty.Store(0)
	for _, v := range s.vols {
		v.syncIfDirty()
	}
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
