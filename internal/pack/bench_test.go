package pack

import (
	"fmt"
	"testing"
)

// BenchmarkPackAppend is the append-heavy path: distinct 4 KiB blocks,
// durability off so the needle encode + write dominates (fsync cost is a
// device property, not an engine property).
func BenchmarkPackAppend(b *testing.B) {
	s, err := Open(b.TempDir(), 1, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := payloadFor(1, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(0, int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackGet is the random-read path: 4096 resident 4 KiB blocks,
// reads rotate across them with a reused destination buffer.
func BenchmarkPackGet(b *testing.B) {
	s, err := Open(b.TempDir(), 1, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const blocks = 4096
	payload := payloadFor(1, 4096)
	for i := int64(0); i < blocks; i++ {
		if err := s.Put(0, i, payload); err != nil {
			b.Fatal(err)
		}
	}
	var dst []byte
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Splmix-style stride so the access pattern is not sequential.
		blk := int64(uint64(i) * 2654435761 % blocks)
		dst, err = s.Get(0, blk, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackPutSynced measures the acknowledged group-commit write:
// ns/op is dominated by the shared fsync cadence, and rises far less than
// linearly as parallel writers share each sync window.
func BenchmarkPackPutSynced(b *testing.B) {
	s, err := Open(b.TempDir(), 1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := payloadFor(1, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			if err := s.Put(0, i, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNeedleDecode isolates the codec.
func BenchmarkNeedleDecode(b *testing.B) {
	for _, size := range []int{512, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			enc := AppendNeedle(nil, 7, payloadFor(7, size))
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := DecodeNeedle(enc, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
