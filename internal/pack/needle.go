package pack

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Needle record layout (little-endian), the unit of the on-disk volume
// format:
//
//	[0:4]    magic  "NDL1"
//	[4:12]   block  int64
//	[12:16]  length uint32 — payload byte count
//	[16:20]  crc    CRC-32C (Castagnoli) over bytes [4:16] then the payload
//	[20:..]  payload
//
// The CRC covers the block/length fields as well as the payload, so a
// record whose header was torn mid-write fails validation even when the
// payload bytes happen to be intact.
const (
	needleMagic      = "NDL1"
	needleHeaderSize = 20
)

// NeedleHeaderSize is the fixed per-record overhead in a volume file.
const NeedleHeaderSize = needleHeaderSize

// DefaultMaxPayload caps one needle's payload (1 MiB), matching the wire
// protocol's default frame cap.
const DefaultMaxPayload = 1 << 20

// Decode errors. DecodeNeedle returns exactly one of these for any
// malformed input — never a panic (FuzzNeedleDecode holds it to that).
var (
	ErrBadMagic  = errors.New("pack: bad needle magic")
	ErrTruncated = errors.New("pack: truncated needle")
	ErrChecksum  = errors.New("pack: needle checksum mismatch")
	ErrTooLarge  = errors.New("pack: needle payload exceeds limit")
)

// castagnoli is hardware-accelerated on the platforms we care about.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendNeedle appends the encoded needle record for (block, payload) to
// buf and returns the extended slice. Zero-alloc when buf has capacity.
func AppendNeedle(buf []byte, block int64, payload []byte) []byte {
	var hdr [needleHeaderSize - 8]byte // block + length, the CRC'd prefix
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(block))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	buf = append(buf, needleMagic...)
	buf = append(buf, hdr[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return append(buf, payload...)
}

// DecodeNeedle validates the needle record at the start of b and returns
// its block, payload (aliasing b), and total encoded size. maxPayload <= 0
// selects DefaultMaxPayload. Corrupt, truncated, or oversized input
// returns an error; DecodeNeedle never panics.
func DecodeNeedle(b []byte, maxPayload int) (block int64, payload []byte, n int, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < needleHeaderSize {
		return 0, nil, 0, ErrTruncated
	}
	if string(b[0:4]) != needleMagic {
		return 0, nil, 0, ErrBadMagic
	}
	length := binary.LittleEndian.Uint32(b[12:16])
	if length > uint32(maxPayload) {
		return 0, nil, 0, ErrTooLarge
	}
	total := needleHeaderSize + int(length)
	if len(b) < total {
		return 0, nil, 0, ErrTruncated
	}
	crc := crc32.Update(0, castagnoli, b[4:16])
	crc = crc32.Update(crc, castagnoli, b[needleHeaderSize:total])
	if crc != binary.LittleEndian.Uint32(b[16:20]) {
		return 0, nil, 0, ErrChecksum
	}
	return int64(binary.LittleEndian.Uint64(b[4:12])), b[needleHeaderSize:total], total, nil
}
