package pack

import (
	"bytes"
	"testing"
)

// FuzzNeedleDecode holds DecodeNeedle to its contract: arbitrary bytes —
// corrupt headers, bad CRCs, truncated payloads, hostile length fields —
// never panic and never decode to something AppendNeedle would not have
// produced.
func FuzzNeedleDecode(f *testing.F) {
	f.Add(AppendNeedle(nil, 0, nil))
	f.Add(AppendNeedle(nil, 42, []byte("hello, volume")))
	f.Add(AppendNeedle(nil, -1, bytes.Repeat([]byte{0xA5}, 300)))
	// Corrupt variants of a valid record.
	valid := AppendNeedle(nil, 7, bytes.Repeat([]byte{3}, 64))
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	badCRC := append([]byte(nil), valid...)
	badCRC[17] ^= 1
	f.Add(badCRC)
	f.Add(valid[:needleHeaderSize+10]) // torn payload
	f.Add(valid[:needleHeaderSize-3])  // torn header
	hugeLen := append([]byte(nil), valid...)
	hugeLen[12], hugeLen[13], hugeLen[14], hugeLen[15] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(hugeLen)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, maxPayload := range []int{0, 16, DefaultMaxPayload} {
			block, payload, n, err := DecodeNeedle(b, maxPayload)
			if err != nil {
				continue
			}
			if n < needleHeaderSize || n > len(b) {
				t.Fatalf("accepted size %d outside [%d,%d]", n, needleHeaderSize, len(b))
			}
			if len(payload) != n-needleHeaderSize {
				t.Fatalf("payload len %d inconsistent with size %d", len(payload), n)
			}
			// An accepted record must re-encode to the exact accepted bytes.
			if enc := AppendNeedle(nil, block, payload); !bytes.Equal(enc, b[:n]) {
				t.Fatal("accepted needle does not round-trip")
			}
		}
	})
}
