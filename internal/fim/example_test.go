package fim_test

import (
	"fmt"

	"flashqos/internal/fim"
)

// Mining frequent pairs from co-occurrence transactions (§IV-A).
func ExampleMinePairs() {
	txs := []fim.Transaction{
		{1, 2}, {1, 2}, {1, 2}, {1, 3}, {2, 3},
	}
	pairs := fim.MinePairs(txs, 2)
	for _, p := range pairs {
		fmt.Printf("(%d,%d) support %d\n", p.A, p.B, p.Support)
	}
	// Output:
	// (1,2) support 3
}

// The three base algorithm families mine identical itemsets.
func ExampleApriori() {
	txs := []fim.Transaction{{1, 2, 3}, {1, 2}, {2, 3}, {1, 2, 3}}
	a := fim.Apriori(txs, 2, 3)
	e := fim.Eclat(txs, 2, 3)
	f := fim.FPGrowth(txs, 2, 3)
	fmt.Println(len(a), len(e), len(f))
	fmt.Println(a[len(a)-1].Items, a[len(a)-1].Support)
	// Output:
	// 7 7 7
	// [1 2 3] 2
}
