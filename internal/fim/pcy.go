package fim

// PCY (Park–Chen–Yu) low-memory pair mining — the counterpart of the
// paper's fim_apriori-lowmem choice (§V-F: "it can deal with large
// datasets efficiently"). Pass 1 counts items and hashes every pair into a
// fixed-size bucket array; pass 2 counts exactly only the pairs of
// frequent items whose bucket met the support threshold. Memory for
// candidate counting drops from O(#pairs) to O(buckets + #surviving pairs).

// PCYOptions tune the miner.
type PCYOptions struct {
	MinSupport int
	Buckets    int // hash buckets for pass 1 (default 1<<16)
}

// MinePairsPCY returns exactly the same frequent pairs as MinePairs, using
// the PCY two-pass strategy. Results are sorted like MinePairs.
func MinePairsPCY(txs []Transaction, opt PCYOptions) []Pair {
	minSupport := opt.MinSupport
	if minSupport < 1 {
		minSupport = 1
	}
	buckets := opt.Buckets
	if buckets <= 0 {
		buckets = 1 << 16
	}
	hash := func(a, b int64) int {
		h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xc2b2ae3d27d4eb4f
		return int(h % uint64(buckets))
	}
	// Pass 1: item counts + pair bucket counts.
	itemCount := make(map[int64]int)
	bucketCount := make([]int32, buckets)
	for _, tx := range txs {
		for _, it := range tx {
			itemCount[it]++
		}
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				bucketCount[hash(tx[i], tx[j])]++
			}
		}
	}
	frequentItem := make(map[int64]bool, len(itemCount))
	for it, c := range itemCount {
		if c >= minSupport {
			frequentItem[it] = true
		}
	}
	// Bitmap of frequent buckets.
	frequentBucket := make([]bool, buckets)
	for i, c := range bucketCount {
		frequentBucket[i] = int(c) >= minSupport
	}
	// Pass 2: exact counts for surviving candidates only.
	pairCount := make(map[[2]int64]int)
	var buf []int64
	for _, tx := range txs {
		buf = buf[:0]
		for _, it := range tx {
			if frequentItem[it] {
				buf = append(buf, it)
			}
		}
		for i := 0; i < len(buf); i++ {
			for j := i + 1; j < len(buf); j++ {
				if frequentBucket[hash(buf[i], buf[j])] {
					pairCount[[2]int64{buf[i], buf[j]}]++
				}
			}
		}
	}
	var out []Pair
	for k, v := range pairCount {
		if v >= minSupport {
			out = append(out, Pair{A: k[0], B: k[1], Support: v})
		}
	}
	sortPairs(out)
	return out
}
