package fim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flashqos/internal/trace"
)

// classic transactions: the textbook market-basket example.
func marketBasket() []Transaction {
	return []Transaction{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	}
}

func TestMinePairsMarketBasket(t *testing.T) {
	pairs := MinePairs(marketBasket(), 2)
	want := map[[2]int64]int{
		{1, 2}: 4, {1, 3}: 4, {2, 3}: 4, {1, 5}: 2, {2, 5}: 2, {2, 4}: 2,
	}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d: %+v", len(pairs), len(want), pairs)
	}
	for _, p := range pairs {
		if want[[2]int64{p.A, p.B}] != p.Support {
			t.Errorf("pair (%d,%d) support %d, want %d", p.A, p.B, p.Support, want[[2]int64{p.A, p.B}])
		}
		if p.A >= p.B {
			t.Errorf("pair (%d,%d) not ordered", p.A, p.B)
		}
	}
	// Sorted by descending support.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Support > pairs[i-1].Support {
			t.Error("pairs not sorted by support")
		}
	}
}

func TestMinePairsMinSupportPrunes(t *testing.T) {
	pairs := MinePairs(marketBasket(), 3)
	if len(pairs) != 3 {
		t.Fatalf("minsup=3: got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		if p.Support < 3 {
			t.Errorf("pair %+v below min support", p)
		}
	}
}

func TestMinePairsEmpty(t *testing.T) {
	if got := MinePairs(nil, 1); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := MinePairs([]Transaction{{1}}, 1); got != nil {
		t.Errorf("single-item transactions have no pairs: %v", got)
	}
}

func TestAprioriMarketBasket(t *testing.T) {
	sets := Apriori(marketBasket(), 2, 3)
	// Known L1 supports: 1:6 2:7 3:6 4:2 5:2
	bySize := map[int][]Itemset{}
	for _, s := range sets {
		bySize[len(s.Items)] = append(bySize[len(s.Items)], s)
		if s.Support < 2 {
			t.Errorf("itemset %+v below min support", s)
		}
	}
	if len(bySize[1]) != 5 {
		t.Errorf("L1 size %d, want 5", len(bySize[1]))
	}
	if len(bySize[2]) != 6 {
		t.Errorf("L2 size %d, want 6", len(bySize[2]))
	}
	// L3: {1,2,3}:2 and {1,2,5}:2.
	if len(bySize[3]) != 2 {
		t.Errorf("L3 size %d, want 2: %+v", len(bySize[3]), bySize[3])
	}
}

func TestAprioriMatchesPairMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var txs []Transaction
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(6)
		seen := map[int64]bool{}
		var tx Transaction
		for j := 0; j < n; j++ {
			v := int64(rng.Intn(30))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	for _, minsup := range []int{1, 2, 5, 10} {
		pairs := MinePairs(txs, minsup)
		apr := Apriori(txs, minsup, 2)
		aprPairs := map[[2]int64]int{}
		for _, s := range apr {
			if len(s.Items) == 2 {
				aprPairs[[2]int64{s.Items[0], s.Items[1]}] = s.Support
			}
		}
		if len(pairs) != len(aprPairs) {
			t.Fatalf("minsup %d: MinePairs %d vs Apriori %d", minsup, len(pairs), len(aprPairs))
		}
		for _, p := range pairs {
			if aprPairs[[2]int64{p.A, p.B}] != p.Support {
				t.Fatalf("minsup %d: support mismatch for (%d,%d)", minsup, p.A, p.B)
			}
		}
	}
}

func sortTx(tx Transaction) {
	for i := range tx {
		for j := i + 1; j < len(tx); j++ {
			if tx[j] < tx[i] {
				tx[i], tx[j] = tx[j], tx[i]
			}
		}
	}
}

func TestEclatMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var txs []Transaction
	for i := 0; i < 150; i++ {
		n := 1 + rng.Intn(5)
		seen := map[int64]bool{}
		var tx Transaction
		for j := 0; j < n; j++ {
			v := int64(rng.Intn(20))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	for _, minsup := range []int{1, 3, 8} {
		for _, maxSize := range []int{1, 2, 3} {
			a := Apriori(txs, minsup, maxSize)
			e := Eclat(txs, minsup, maxSize)
			if !reflect.DeepEqual(a, e) {
				t.Fatalf("minsup=%d maxSize=%d: Apriori and Eclat disagree (%d vs %d sets)", minsup, maxSize, len(a), len(e))
			}
		}
	}
}

func TestAprioriEdgeCases(t *testing.T) {
	if got := Apriori(nil, 1, 2); got != nil {
		t.Error("empty transactions should mine nothing")
	}
	if got := Apriori(marketBasket(), 1, 0); got != nil {
		t.Error("maxSize 0 should mine nothing")
	}
	// minSupport <= 0 clamps to 1.
	sets := Apriori([]Transaction{{7}}, 0, 1)
	if len(sets) != 1 || sets[0].Support != 1 {
		t.Errorf("minsup clamp: %+v", sets)
	}
}

func TestTransactionsFromRecords(t *testing.T) {
	recs := []trace.Record{
		{Arrival: 0.00, Block: 1},
		{Arrival: 0.05, Block: 2},
		{Arrival: 0.05, Block: 2}, // duplicate within window
		{Arrival: 0.20, Block: 3},
		{Arrival: 0.21, Block: 1},
		{Arrival: 0.55, Block: 9},
	}
	txs := TransactionsFromRecords(recs, 0.133)
	if len(txs) != 3 {
		t.Fatalf("got %d transactions, want 3: %v", len(txs), txs)
	}
	if !reflect.DeepEqual(txs[0], Transaction{1, 2}) {
		t.Errorf("tx0 = %v, want [1 2]", txs[0])
	}
	if !reflect.DeepEqual(txs[1], Transaction{1, 3}) {
		t.Errorf("tx1 = %v, want [1 3]", txs[1])
	}
	if !reflect.DeepEqual(txs[2], Transaction{9}) {
		t.Errorf("tx2 = %v, want [9]", txs[2])
	}
}

func TestTransactionsFromRecordsEmptyAndPanic(t *testing.T) {
	if got := TransactionsFromRecords(nil, 1); got != nil {
		t.Error("no records → no transactions")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero window should panic")
		}
	}()
	TransactionsFromRecords(nil, 0)
}

func TestMinePairsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var txs []Transaction
	for i := 0; i < 500; i++ {
		var tx Transaction
		seen := map[int64]bool{}
		for j := 0; j < 1+rng.Intn(8); j++ {
			v := int64(rng.Intn(50))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	serial := MinePairsParallel(txs, 2, 1)
	for _, workers := range []int{2, 4, 8, 1000} {
		par := MinePairsParallel(txs, 2, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel result differs", workers)
		}
	}
}

func TestMeasure(t *testing.T) {
	st := Measure(func() {
		_ = make([]byte, 10<<20)
	})
	if st.AllocMB < 9 {
		t.Errorf("AllocMB = %g, want >= ~10", st.AllocMB)
	}
	if st.Duration < 0 {
		t.Error("negative duration")
	}
}

// Property: every pair reported by MinePairs appears in at least Support
// transactions (verified by brute force on small inputs).
func TestQuickPairSupportCorrect(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var txs []Transaction
		for i := 0; i < 30; i++ {
			var tx Transaction
			seen := map[int64]bool{}
			for j := 0; j < 1+rng.Intn(5); j++ {
				v := int64(rng.Intn(10))
				if !seen[v] {
					seen[v] = true
					tx = append(tx, v)
				}
			}
			sortTx(tx)
			txs = append(txs, tx)
		}
		minsup := 1 + rng.Intn(4)
		pairs := MinePairs(txs, minsup)
		for _, p := range pairs {
			count := 0
			for _, tx := range txs {
				hasA, hasB := false, false
				for _, v := range tx {
					if v == p.A {
						hasA = true
					}
					if v == p.B {
						hasB = true
					}
				}
				if hasA && hasB {
					count++
				}
			}
			if count != p.Support || count < minsup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinePairs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var txs []Transaction
	for i := 0; i < 10000; i++ {
		var tx Transaction
		seen := map[int64]bool{}
		for j := 0; j < 1+rng.Intn(4); j++ {
			v := int64(rng.Intn(1000))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinePairs(txs, 2)
	}
}

func BenchmarkApriori3(b *testing.B) {
	txs := marketBasket()
	for i := 0; i < b.N; i++ {
		Apriori(txs, 2, 3)
	}
}

func TestRules(t *testing.T) {
	txs := marketBasket()
	pairs := MinePairs(txs, 2)
	rules := Rules(txs, pairs, 0.5)
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	// Confidence of 5 -> 2: pair (2,5) support 2, item 5 count 2 -> 1.0.
	found := false
	for _, r := range rules {
		if r.Antecedent == 5 && r.Consequent == 2 {
			found = true
			if r.Confidence != 1.0 || r.Support != 2 {
				t.Errorf("rule 5->2: conf %.2f support %d, want 1.00/2", r.Confidence, r.Support)
			}
		}
		if r.Confidence < 0.5 {
			t.Errorf("rule %+v below min confidence", r)
		}
	}
	if !found {
		t.Error("expected rule 5 -> 2 with confidence 1.0")
	}
	// Sorted by descending confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
	// Directionality: 2 -> 5 has confidence 2/7, excluded at 0.5.
	for _, r := range rules {
		if r.Antecedent == 2 && r.Consequent == 5 {
			t.Error("low-confidence direction should be filtered")
		}
	}
	if got := Rules(txs, nil, 0.1); got != nil {
		t.Error("no pairs -> no rules")
	}
}
