package fim

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestFPGrowthMarketBasket(t *testing.T) {
	got := FPGrowth(marketBasket(), 2, 3)
	want := Apriori(marketBasket(), 2, 3)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FP-growth disagrees with Apriori:\n got %v\nwant %v", got, want)
	}
}

func TestFPGrowthMatchesAprioriRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		var txs []Transaction
		n := 50 + rng.Intn(150)
		for i := 0; i < n; i++ {
			seen := map[int64]bool{}
			var tx Transaction
			for j := 0; j < 1+rng.Intn(6); j++ {
				v := int64(rng.Intn(25))
				if !seen[v] {
					seen[v] = true
					tx = append(tx, v)
				}
			}
			sortTx(tx)
			txs = append(txs, tx)
		}
		for _, minsup := range []int{1, 2, 5} {
			for _, maxSize := range []int{1, 2, 3, 4} {
				a := Apriori(txs, minsup, maxSize)
				f := FPGrowth(txs, minsup, maxSize)
				if !reflect.DeepEqual(a, f) {
					t.Fatalf("trial %d minsup=%d maxSize=%d: Apriori %d sets, FP-growth %d sets",
						trial, minsup, maxSize, len(a), len(f))
				}
			}
		}
	}
}

func TestFPGrowthEdgeCases(t *testing.T) {
	if got := FPGrowth(nil, 1, 2); got != nil {
		t.Error("empty transactions should mine nothing")
	}
	if got := FPGrowth(marketBasket(), 2, 0); got != nil {
		t.Error("maxSize 0 should mine nothing")
	}
	if got := FPGrowth(marketBasket(), 100, 2); got != nil {
		t.Error("impossible support should mine nothing")
	}
	// minSupport clamp.
	sets := FPGrowth([]Transaction{{7}}, -5, 1)
	if len(sets) != 1 || sets[0].Support != 1 {
		t.Errorf("clamped minsup: %+v", sets)
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var txs []Transaction
	for i := 0; i < 2000; i++ {
		seen := map[int64]bool{}
		var tx Transaction
		for j := 0; j < 1+rng.Intn(6); j++ {
			v := int64(rng.Intn(100))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FPGrowth(txs, 3, 3)
	}
}

func TestPCYMatchesMinePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var txs []Transaction
	for i := 0; i < 800; i++ {
		seen := map[int64]bool{}
		var tx Transaction
		for j := 0; j < 1+rng.Intn(7); j++ {
			v := int64(rng.Intn(60))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	for _, minsup := range []int{1, 2, 5, 20} {
		want := MinePairs(txs, minsup)
		// Both a roomy and a cramped bucket table must be exact.
		for _, buckets := range []int{1 << 16, 64, 1} {
			got := MinePairsPCY(txs, PCYOptions{MinSupport: minsup, Buckets: buckets})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d buckets=%d: PCY %d pairs, MinePairs %d", minsup, buckets, len(got), len(want))
			}
		}
	}
}

func TestPCYDefaults(t *testing.T) {
	got := MinePairsPCY(marketBasket(), PCYOptions{MinSupport: 2})
	want := MinePairs(marketBasket(), 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("PCY with default buckets disagrees")
	}
	if MinePairsPCY(nil, PCYOptions{}) != nil {
		t.Error("empty input should mine nothing")
	}
}

func BenchmarkPCY(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var txs []Transaction
	for i := 0; i < 10000; i++ {
		seen := map[int64]bool{}
		var tx Transaction
		for j := 0; j < 1+rng.Intn(4); j++ {
			v := int64(rng.Intn(1000))
			if !seen[v] {
				seen[v] = true
				tx = append(tx, v)
			}
		}
		sortTx(tx)
		txs = append(txs, tx)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinePairsPCY(txs, PCYOptions{MinSupport: 2})
	}
}
