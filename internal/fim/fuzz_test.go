package fim

import (
	"sort"
	"testing"
)

// FuzzMinePairs checks the pair miner never panics and produces supports
// consistent with brute-force counting on arbitrary transaction inputs.
func FuzzMinePairs(f *testing.F) {
	f.Add([]byte{1, 2, 0, 1, 3, 0, 2, 3}, 2)
	f.Add([]byte{}, 1)
	f.Add([]byte{5, 5, 5, 0}, 0)
	f.Fuzz(func(t *testing.T, raw []byte, minsup int) {
		// Decode: 0 separates transactions; other bytes are items.
		var txs []Transaction
		var cur []int64
		seen := map[int64]bool{}
		for _, b := range raw {
			if b == 0 {
				if len(cur) > 0 {
					txs = append(txs, cur)
					cur = nil
					seen = map[int64]bool{}
				}
				continue
			}
			v := int64(b)
			if !seen[v] {
				seen[v] = true
				cur = append(cur, v)
			}
		}
		if len(cur) > 0 {
			txs = append(txs, cur)
		}
		for _, tx := range txs {
			sort.Slice(tx, func(i, j int) bool { return tx[i] < tx[j] })
		}
		if minsup > 1000 || minsup < -1000 {
			return
		}
		pairs := MinePairs(txs, minsup)
		for _, p := range pairs {
			count := 0
			for _, tx := range txs {
				hasA, hasB := false, false
				for _, v := range tx {
					if v == p.A {
						hasA = true
					}
					if v == p.B {
						hasB = true
					}
				}
				if hasA && hasB {
					count++
				}
			}
			if count != p.Support {
				t.Fatalf("pair (%d,%d): support %d, brute force %d", p.A, p.B, p.Support, count)
			}
		}
	})
}
