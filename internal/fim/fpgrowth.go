package fim

import "sort"

// FP-growth (Han, Pei & Yin, SIGMOD 2000) — the third base algorithm family
// the paper's §IV-A cites. Transactions are compressed into a prefix tree
// (FP-tree) ordered by descending item frequency; frequent itemsets are
// mined recursively from conditional pattern bases without candidate
// generation.

// fpNode is one FP-tree node.
type fpNode struct {
	item     int64
	count    int
	parent   *fpNode
	children map[int64]*fpNode
	next     *fpNode // header-table chain of nodes with the same item
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root    *fpNode
	headers map[int64]*fpNode
	counts  map[int64]int
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[int64]*fpNode)},
		headers: make(map[int64]*fpNode),
		counts:  make(map[int64]int),
	}
}

// insert adds a frequency-ordered item list with the given count.
func (t *fpTree) insert(items []int64, count int) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &fpNode{item: it, parent: cur, children: make(map[int64]*fpNode)}
			cur.children[it] = child
			// Chain into the header table.
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// FPGrowth mines all frequent itemsets of size 1..maxSize with support >=
// minSupport. It produces exactly the same result as Apriori and Eclat.
func FPGrowth(txs []Transaction, minSupport, maxSize int) []Itemset {
	if minSupport < 1 {
		minSupport = 1
	}
	if maxSize < 1 {
		return nil
	}
	// Global frequencies; frequent items ordered by descending support
	// (ties by item) define the tree order.
	freq := make(map[int64]int)
	for _, tx := range txs {
		for _, it := range tx {
			freq[it]++
		}
	}
	order := make(map[int64]int) // item -> rank
	{
		var items []int64
		for it, c := range freq {
			if c >= minSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if freq[items[i]] != freq[items[j]] {
				return freq[items[i]] > freq[items[j]]
			}
			return items[i] < items[j]
		})
		for rank, it := range items {
			order[it] = rank
		}
	}
	tree := newFPTree()
	for _, tx := range txs {
		var kept []int64
		for _, it := range tx {
			if _, ok := order[it]; ok {
				kept = append(kept, it)
			}
		}
		sort.Slice(kept, func(i, j int) bool { return order[kept[i]] < order[kept[j]] })
		if len(kept) > 0 {
			tree.insert(kept, 1)
		}
	}

	var result []Itemset
	var mine func(t *fpTree, suffix []int64)
	mine = func(t *fpTree, suffix []int64) {
		// Items in the tree, processed in ascending support order
		// (bottom-up) for conditional growth.
		var items []int64
		for it, c := range t.counts {
			if c >= minSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if t.counts[items[i]] != t.counts[items[j]] {
				return t.counts[items[i]] < t.counts[items[j]]
			}
			return items[i] > items[j]
		})
		for _, it := range items {
			pattern := append(append([]int64{}, suffix...), it)
			sort.Slice(pattern, func(i, j int) bool { return pattern[i] < pattern[j] })
			result = append(result, Itemset{Items: pattern, Support: t.counts[it]})
			if len(pattern) >= maxSize {
				continue
			}
			// Conditional pattern base: prefix paths of every node of `it`.
			cond := newFPTree()
			for node := t.headers[it]; node != nil; node = node.next {
				var path []int64
				for p := node.parent; p != nil && p.parent != nil; p = p.parent {
					path = append(path, p.item)
				}
				// path is leaf→root; reverse to root→leaf insertion order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				if len(path) > 0 {
					cond.insert(path, node.count)
				}
			}
			// Prune infrequent items from the conditional tree by rebuilding.
			pruned := newFPTree()
			var rebuild func(n *fpNode, prefix []int64)
			rebuild = func(n *fpNode, prefix []int64) {
				for _, child := range n.children {
					p := prefix
					if cond.counts[child.item] >= minSupport {
						p = append(append([]int64{}, prefix...), child.item)
					}
					// Count only the node's own contribution beyond its
					// children (handled by inserting leaf counts): insert the
					// full prefix with this node's count minus children sum.
					childSum := 0
					for _, gc := range child.children {
						childSum += gc.count
					}
					if own := child.count - childSum; own > 0 && len(p) > 0 {
						pruned.insert(p, own)
					}
					rebuild(child, p)
				}
			}
			rebuild(cond.root, nil)
			if len(pruned.counts) > 0 {
				mine(pruned, pattern)
			}
		}
	}
	mine(tree, nil)
	sortItemsets(result)
	return result
}
