package fim

import "sort"

// Association rules (paper §IV-A: "x number of customers who bought item1
// also bought item2"). A rule A → B has support = count(A ∧ B) and
// confidence = count(A ∧ B) / count(A).

// Rule is a pairwise association rule.
type Rule struct {
	Antecedent int64
	Consequent int64
	Support    int     // co-occurrence count
	Confidence float64 // Support / count(Antecedent)
}

// Rules derives directed pairwise association rules from mined frequent
// pairs and the transactions they came from. Only rules with confidence >=
// minConfidence are kept; results are sorted by descending confidence,
// then descending support.
func Rules(txs []Transaction, pairs []Pair, minConfidence float64) []Rule {
	if len(pairs) == 0 {
		return nil
	}
	itemCount := make(map[int64]int)
	for _, tx := range txs {
		for _, it := range tx {
			itemCount[it]++
		}
	}
	var out []Rule
	add := func(a, b int64, support int) {
		ca := itemCount[a]
		if ca == 0 {
			return
		}
		conf := float64(support) / float64(ca)
		if conf >= minConfidence {
			out = append(out, Rule{Antecedent: a, Consequent: b, Support: support, Confidence: conf})
		}
	}
	for _, p := range pairs {
		add(p.A, p.B, p.Support)
		add(p.B, p.A, p.Support)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].Antecedent != out[j].Antecedent {
			return out[i].Antecedent < out[j].Antecedent
		}
		return out[i].Consequent < out[j].Consequent
	})
	return out
}
