// Package fim implements frequent itemset mining (paper §IV-A): all three
// base algorithm families the paper cites — Apriori (generic level-wise
// plus a pair-specialized parallel variant), Eclat and FP-growth — and a
// PCY low-memory pair miner standing in for the paper's
// fim_apriori-lowmem. Association rules with confidence are derived from
// the mined pairs. Transactions are built from I/O traces by grouping
// requests that arrive within the same time window T, the storage
// system's response time (0.133 ms in the paper's setup).
package fim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"flashqos/internal/trace"
)

// Transaction is a set of distinct items (block numbers) requested together.
type Transaction []int64

// Pair is a frequent 2-itemset with its support count. A < B always.
type Pair struct {
	A, B    int64
	Support int
}

// Itemset is a frequent k-itemset: sorted items plus support.
type Itemset struct {
	Items   []int64
	Support int
}

// TransactionsFromRecords groups the records into transactions: all
// requests whose arrivals fall in the same window of length windowMS form
// one transaction (duplicates removed). Records must be sorted by arrival.
func TransactionsFromRecords(recs []trace.Record, windowMS float64) []Transaction {
	if windowMS <= 0 {
		panic(fmt.Sprintf("fim: window must be positive, got %g", windowMS))
	}
	var out []Transaction
	var cur map[int64]bool
	curWindow := -1
	flush := func() {
		if len(cur) == 0 {
			return
		}
		tx := make(Transaction, 0, len(cur))
		for b := range cur {
			tx = append(tx, b)
		}
		sort.Slice(tx, func(i, j int) bool { return tx[i] < tx[j] })
		out = append(out, tx)
	}
	for _, r := range recs {
		w := int(r.Arrival / windowMS)
		if w != curWindow {
			flush()
			cur = make(map[int64]bool)
			curWindow = w
		}
		cur[r.Block] = true
	}
	flush()
	return out
}

// MinePairs runs the pair-specialized Apriori: items below minSupport are
// pruned, then co-occurrence counts of the surviving items are accumulated
// per transaction. Counting is sharded across worker goroutines. Pairs are
// returned sorted by descending support, then (A, B).
func MinePairs(txs []Transaction, minSupport int) []Pair {
	return MinePairsParallel(txs, minSupport, runtime.GOMAXPROCS(0))
}

// MinePairsParallel is MinePairs with an explicit worker count.
func MinePairsParallel(txs []Transaction, minSupport, workers int) []Pair {
	if minSupport < 1 {
		minSupport = 1
	}
	if workers < 1 {
		workers = 1
	}
	// Pass 1: item supports.
	itemCount := make(map[int64]int)
	for _, tx := range txs {
		for _, it := range tx {
			itemCount[it]++
		}
	}
	frequent := make(map[int64]bool, len(itemCount))
	for it, c := range itemCount {
		if c >= minSupport {
			frequent[it] = true
		}
	}
	// Pass 2: pair supports over frequent items, sharded.
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers == 0 {
		return nil
	}
	shards := make([]map[[2]int64]int, workers)
	var wg sync.WaitGroup
	chunk := (len(txs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(txs) {
			hi = len(txs)
		}
		shards[w] = make(map[[2]int64]int)
		wg.Add(1)
		go func(m map[[2]int64]int, part []Transaction) {
			defer wg.Done()
			var buf []int64
			for _, tx := range part {
				buf = buf[:0]
				for _, it := range tx {
					if frequent[it] {
						buf = append(buf, it)
					}
				}
				for i := 0; i < len(buf); i++ {
					for j := i + 1; j < len(buf); j++ {
						m[[2]int64{buf[i], buf[j]}]++
					}
				}
			}
		}(shards[w], txs[lo:hi])
	}
	wg.Wait()
	total := shards[0]
	for _, m := range shards[1:] {
		for k, v := range m {
			total[k] += v
		}
	}
	var out []Pair
	for k, v := range total {
		if v >= minSupport {
			out = append(out, Pair{A: k[0], B: k[1], Support: v})
		}
	}
	sortPairs(out)
	return out
}

// sortPairs orders pairs by descending support, then (A, B).
func sortPairs(out []Pair) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
}

// Stats instruments a mining run the way the paper's Table IV reports FIM
// performance: wall-clock time and memory allocated during the run.
type Stats struct {
	Duration time.Duration
	AllocMB  float64 // bytes allocated during the run / 2^20
}

// Measure runs f and reports its duration and allocation volume.
func Measure(f func()) Stats {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	return Stats{
		Duration: d,
		AllocMB:  float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
	}
}
