// Sharded: scale the QoS framework past one array by hash-partitioning
// the block space across K independent (9,3,1) engines.
//
// The demo makes the scaling argument concrete in three steps:
//
//  1. Capacity composes additively — an open-loop overload sweep shows
//     the in-guarantee admission throughput growing K·S/T with the shard
//     count (the experiments.ShardScaling numbers).
//  2. Routing is deterministic and local — a block's replicas, and the
//     device that serves it, always live inside its owning shard.
//  3. Failures stay contained — failing a device degrades only its own
//     shard to S', the aggregate limit drops by exactly S − S' of one
//     shard, and the other shards keep the full guarantee.
package main

import (
	"flag"
	"fmt"
	"log"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/experiments"
	"flashqos/internal/health"
	"flashqos/internal/shard"
)

func main() {
	k := flag.Int("shards", 4, "shard count for the routing/failure demo")
	flag.Parse()

	// 1. Capacity scaling: offered load far past one array's S/T.
	fmt.Println("== in-guarantee admission throughput vs shard count ==")
	rows, err := experiments.ShardScaling([]int{1, 2, 4, 8}, 50, 80000)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %s\n", r)
	}
	base := rows[0].GuaranteedPerMS
	fmt.Printf("  scaling vs K=1:")
	for _, r := range rows {
		fmt.Printf(" %.1fx", r.GuaranteedPerMS/base)
	}
	fmt.Println()

	// 2. Routing: blocks land on devices owned by their shard.
	arr, err := shard.New(*k, core.Config{Design: design.Paper931()})
	if err != nil {
		log.Fatal(err)
	}
	if err := arr.NewHealthMonitors(0, health.Config{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== %d shards, %d devices, aggregate S=%d ==\n", arr.Shards(), arr.Devices(), arr.S())
	at := 0.0
	for _, block := range []int64{7, 42, 1001, 31337} {
		out := arr.Submit(at, block)
		at += 0.2
		sh, local, _ := arr.DeviceShard(out.Device)
		fmt.Printf("  block %6d -> shard %d, global device %2d (local %d), response %.3f ms\n",
			block, sh, out.Device, local, out.Response())
	}

	// 3. Failure containment: take one device out, watch only its shard
	// degrade from S to S'.
	victimShard, victimLocal := 1, 4
	victim := arr.GlobalDevice(victimShard, victimLocal)
	if err := arr.Monitor(victimShard).Fail(victimLocal); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after failing global device %d (shard %d) ==\n", victim, victimShard)
	st := arr.Stats()
	fmt.Printf("  aggregate: S=%d effective=%d alive=%d/%d\n", st.S, st.EffectiveS, st.Alive, st.Devices)
	for i, ss := range st.PerShard {
		note := ""
		if ss.EffectiveS < ss.S {
			note = "  <- degraded to S'"
		}
		fmt.Printf("  shard %d: S=%d effective=%d alive=%d%s\n", i, ss.S, ss.EffectiveS, ss.Alive, note)
	}
}
