// Quickstart: build a replication-based QoS system on a 9-module flash
// array, register applications against the deterministic guarantee, and
// submit block requests — the paper's Table I scenario end to end.
package main

import (
	"fmt"
	"log"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
)

func main() {
	// The (9,3,1) design from the paper: 9 flash modules, 3 copies of every
	// bucket, every device pair shares exactly one design block.
	d := design.Paper931()
	fmt.Println("design:", d)
	fmt.Printf("guarantee: any %d requests retrieved in 1 access, %d in 2, %d in 3\n",
		d.S(1), d.S(2), d.S(3))

	sys, err := core.New(core.Config{Design: d}) // M=1, T=0.133 ms, online retrieval
	if err != nil {
		log.Fatal(err)
	}

	// Admission control for long-running applications (Table I): request
	// sizes are reserved against the S = 5 limit.
	reg, err := admission.NewRegistry(sys.S())
	if err != nil {
		log.Fatal(err)
	}
	for _, app := range []struct {
		name string
		size int
	}{
		{"app1", 2}, {"app2", 2}, {"app3", 1}, {"app4", 1},
	} {
		if err := reg.Admit(app.name, app.size); err != nil {
			fmt.Printf("%s: rejected (%v)\n", app.name, err)
		} else {
			fmt.Printf("%s: admitted with %d requests/period (total %d/%d)\n",
				app.name, app.size, reg.Total(), sys.S())
		}
	}

	// Submit one period of block requests. Each data block is mapped to a
	// design block and retrieved from one of its three replica devices.
	fmt.Println("\nsubmitting 5 block requests at t=0:")
	for block := int64(0); block < 5; block++ {
		out := sys.Submit(0, block*7)
		fmt.Printf("  block %2d -> device %d, response %.6f ms, delayed=%v\n",
			block*7, out.Device, out.Response(), out.Delayed)
	}

	// A sixth concurrent request exceeds S and is delayed to the next
	// 0.133 ms interval — the deterministic guarantee in action.
	out := sys.Submit(0, 99)
	fmt.Printf("\n6th concurrent request: delayed=%v by %.6f ms (admitted at %.3f ms)\n",
		out.Delayed, out.Delay, out.Admitted)
}
