// Cloudserver: the storage-cloud deployment the paper motivates (§I) — a
// QoS flash array served over TCP with multiple tenants submitting block
// reads concurrently. Starts the server in-process, runs the tenants, and
// prints what each observed plus the server-side accounting.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/qosnet"
)

func main() {
	tenants := flag.Int("tenants", 4, "concurrent clients")
	perTenant := flag.Int("requests", 200, "requests per client")
	flag.Parse()

	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		log.Fatal(err)
	}
	srv := qosnet.NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("qosd serving (9,3,1) array at %s — S=%d requests per %.3f ms interval\n\n",
		addr, sys.S(), 0.133)

	type tenantStats struct {
		ok, delayed int
		maxResp     float64
	}
	results := make([]tenantStats, *tenants)
	var wg sync.WaitGroup
	for ti := 0; ti < *tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			c, err := qosnet.Dial(addr.String())
			if err != nil {
				log.Println(err)
				return
			}
			defer c.Close()
			for i := 0; i < *perTenant; i++ {
				res, err := c.Read(int64(ti*100000 + i))
				if err != nil {
					log.Println(err)
					return
				}
				results[ti].ok++
				if res.Delayed {
					results[ti].delayed++
				}
				if res.RespMS > results[ti].maxResp {
					results[ti].maxResp = res.RespMS
				}
			}
		}(ti)
	}
	wg.Wait()

	for ti, r := range results {
		fmt.Printf("tenant %d: %d ok, %d delayed, worst response %.6f ms (guarantee %.6f)\n",
			ti, r.ok, r.delayed, r.maxResp, 0.132507)
	}
	c, err := qosnet.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	reqs, delayed, rejected, avgDelay, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver: %d requests, %d delayed (avg %.4f ms), %d rejected\n",
		reqs, delayed, avgDelay, rejected)
	fmt.Println("every admitted request met the fixed response-time guarantee")
}
