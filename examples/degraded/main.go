// Degraded: what a flash array does when devices misbehave.
//
// The default mode starts an in-process qosnet server with the device-
// health subsystem enabled and drives the live degraded-mode arc over the
// wire: FAIL a device, watch admission drop from S to S', see reads avoid
// the failed module, RECOVER it, and watch the rate-capped resilver bring
// the full guarantee back.
//
// -offline switches to the older heterogeneity study: makespan-aware
// retrieval on an array with slowed modules (wear, garbage collection,
// mixed device generations), comparing the access-count-optimal schedule
// against the generalized minimum-makespan one (ICPP'12 [15]).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/qosnet"
	"flashqos/internal/retrieval"
)

func main() {
	offline := flag.Bool("offline", false, "run the offline heterogeneity study instead of the live FAIL/RECOVER demo")
	slow := flag.Int("slow", 2, "offline: number of slowed modules (0-8)")
	factor := flag.Float64("factor", 2.0, "offline: slowdown factor")
	victim := flag.Int("victim", 0, "live: device to fail (0-8)")
	rebuildRate := flag.Float64("rebuild-rate", 2000, "live: rebuild cap, bucket copies per second")
	flag.Parse()

	if *offline {
		runOffline(*slow, *factor)
		return
	}
	runLive(*victim, *rebuildRate)
}

// runLive boots a health-enabled server on a loopback port and plays the
// failure → degrade → rebuild → recover arc through the admin protocol.
func runLive(victim int, rebuildRate float64) {
	if victim < 0 || victim > 8 {
		log.Fatal("victim must be in [0,8]")
	}
	sys, err := core.New(core.Config{Design: design.Paper931(), M: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.NewHealthMonitor(rebuildRate, health.Config{}); err != nil {
		log.Fatal(err)
	}
	srv := qosnet.NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("server: (9,3,1) design, S=%d, health on, rebuild %g copies/s, %s\n\n", sys.S(), rebuildRate, addr)

	c, err := qosnet.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	readBurst := func(label string) {
		onVictim := 0
		for b := int64(0); b < 36; b++ {
			res, err := c.Read(b)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Rejected && res.Device == victim {
				onVictim++
			}
		}
		fmt.Printf("%s: 36 reads, %d served by device %d\n", label, onVictim, victim)
	}
	showHealth := func() qosnet.HealthStatus {
		h, err := c.Health()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  HEALTH: alive=%d/%d S_eff=%d (S=%d) rebuild pending=%d done=%d, device %d %s\n",
			h.Alive, h.Devices, h.EffectiveS, h.FullS, h.RebuildPending, h.RebuildDone, victim, h.States[victim].State)
		return h
	}

	readBurst("healthy array")
	showHealth()

	state, s, err := c.Fail(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFAIL %d → device %s, admission limit S' = %d\n", victim, state, s)
	readBurst("degraded array")
	showHealth()

	state, s, err = c.Recover(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRECOVER %d → device %s, S' stays %d until the resilver drains\n", victim, state, s)
	for {
		time.Sleep(20 * time.Millisecond)
		if h := showHealth(); h.EffectiveS == h.FullS {
			break
		}
	}
	readBurst("\nrecovered array")
}

// runOffline is the heterogeneity study: makespan-aware retrieval against
// slowed modules.
func runOffline(slow int, factor float64) {
	if slow < 0 || slow > 8 {
		log.Fatal("slow must be in [0,8]")
	}

	const service = 0.132507
	alloc, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		log.Fatal(err)
	}
	svc := make([]float64, 9)
	for d := range svc {
		svc[d] = service
		if d < slow {
			svc[d] *= factor
		}
	}
	fmt.Printf("array: 9 modules, %d slowed %.1fx (devices 0..%d)\n\n", slow, factor, slow-1)

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(36)
	replicas := make([][]int, 14) // an S(2)-sized batch
	for i := range replicas {
		replicas[i] = alloc.Replicas(perm[i])
	}

	// Access-count-optimal schedule, evaluated at real device speeds.
	res := retrieval.Optimal(replicas, 9)
	load := make([]int, 9)
	for _, d := range res.Assignment {
		load[d]++
	}
	worst := 0.0
	for d, l := range load {
		if m := float64(l) * svc[d]; m > worst {
			worst = m
		}
	}
	fmt.Printf("access-count schedule: %d accesses, realized makespan %.4f ms\n", res.Accesses, worst)
	fmt.Printf("  per-device load: %v\n", load)

	// Heterogeneity-aware schedule.
	h := retrieval.MinResponseTime(replicas, svc)
	hload := make([]int, 9)
	for _, d := range h.Assignment {
		hload[d]++
	}
	fmt.Printf("\nmakespan-aware schedule: realized makespan %.4f ms\n", h.Makespan)
	fmt.Printf("  per-device load: %v (slow devices carry less)\n", hload)
	if worst > h.Makespan {
		fmt.Printf("\nimprovement: %.2fx faster batch completion\n", worst/h.Makespan)
	}
}
