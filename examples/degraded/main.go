// Degraded: heterogeneity-aware retrieval on a flash array with slowed
// modules (wear, garbage collection, mixed device generations). Shows how
// the generalized minimum-makespan retrieval (ICPP'12 [15], cited as the
// paper's retrieval substrate) shifts load away from slow modules while
// the plain access-count-optimal schedule does not.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/retrieval"
)

func main() {
	slow := flag.Int("slow", 2, "number of 2x-slowed modules (0-8)")
	factor := flag.Float64("factor", 2.0, "slowdown factor")
	flag.Parse()
	if *slow < 0 || *slow > 8 {
		log.Fatal("slow must be in [0,8]")
	}

	const service = 0.132507
	alloc, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		log.Fatal(err)
	}
	svc := make([]float64, 9)
	for d := range svc {
		svc[d] = service
		if d < *slow {
			svc[d] *= *factor
		}
	}
	fmt.Printf("array: 9 modules, %d slowed %.1fx (devices 0..%d)\n\n", *slow, *factor, *slow-1)

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(36)
	replicas := make([][]int, 14) // an S(2)-sized batch
	for i := range replicas {
		replicas[i] = alloc.Replicas(perm[i])
	}

	// Access-count-optimal schedule, evaluated at real device speeds.
	res := retrieval.Optimal(replicas, 9)
	load := make([]int, 9)
	for _, d := range res.Assignment {
		load[d]++
	}
	worst := 0.0
	for d, l := range load {
		if m := float64(l) * svc[d]; m > worst {
			worst = m
		}
	}
	fmt.Printf("access-count schedule: %d accesses, realized makespan %.4f ms\n", res.Accesses, worst)
	fmt.Printf("  per-device load: %v\n", load)

	// Heterogeneity-aware schedule.
	h := retrieval.MinResponseTime(replicas, svc)
	hload := make([]int, 9)
	for _, d := range h.Assignment {
		hload[d]++
	}
	fmt.Printf("\nmakespan-aware schedule: realized makespan %.4f ms\n", h.Makespan)
	fmt.Printf("  per-device load: %v (slow devices carry less)\n", hload)
	if worst > h.Makespan {
		fmt.Printf("\nimprovement: %.2fx faster batch completion\n", worst/h.Makespan)
	}
}
