// Datapath: the real-bytes data path end to end — a qosd-style server on
// the pack storage engine, with QoS admission fronting every payload
// operation. The demo starts an in-process server whose devices are
// append-only volume files in a temp directory, then:
//
//  1. PUTs a working set over the binary protocol (each write lands
//     group-commit-fsynced on every available replica) and GETs it back,
//     verifying bytes and printing the admission outcome that priced each
//     request.
//  2. Fails a device, writes more blocks degraded, recovers it, and
//     waits for the resilver to copy the missed payloads back — then
//     proves the recovered device holds its replicas byte-for-byte.
//  3. Reopens the same directory cold and serves the working set again:
//     the in-memory needle index is rebuilt entirely from the volume
//     files.
//
// Run with -dir to keep the volumes around and inspect them.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/pack"
	"flashqos/internal/qosnet"
	"flashqos/internal/shard"
)

func payload(block int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i)*7 + block*13 + 1)
	}
	return b
}

func startServer(dir string) (*qosnet.Server, *shard.Array, *pack.Store, string, error) {
	arr, err := shard.New(1, core.Config{Design: design.Paper931()})
	if err != nil {
		return nil, nil, nil, "", err
	}
	store, err := pack.Open(dir, arr.Devices(), pack.Options{SyncInterval: time.Millisecond})
	if err != nil {
		return nil, nil, nil, "", err
	}
	cfg := health.Config{SuspectAfter: 3, FailAfter: 5}
	if err := arr.NewHealthMonitorsWithCopy(10_000, cfg, qosnet.RebuildCopy(arr, store)); err != nil {
		store.Close()
		return nil, nil, nil, "", err
	}
	srv := qosnet.NewServerSharded(arr, qosnet.Options{Store: store})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		store.Close()
		return nil, nil, nil, "", err
	}
	go srv.Serve()
	return srv, arr, store, addr.String(), nil
}

func main() {
	dirFlag := flag.String("dir", "", "volume directory (default: a temp dir, removed at exit)")
	blocks := flag.Int("blocks", 24, "working-set size in blocks")
	size := flag.Int("size", 1024, "payload bytes per block")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		d, err := os.MkdirTemp("", "datapath-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	srv, arr, store, addr, err := startServer(dir)
	if err != nil {
		log.Fatal(err)
	}
	c, err := qosnet.DialBinary(addr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pack store: %d devices under %s\n\n", store.Devices(), dir)

	// 1. PUT then GET with admission in front.
	for b := 0; b < *blocks; b++ {
		out, err := c.Put(int64(b), payload(int64(b), *size))
		if err != nil {
			log.Fatal(err)
		}
		if b < 3 {
			fmt.Printf("PUT %2d: device %d, response %.4f ms\n", b, out.Device, out.RespMS)
		}
	}
	fmt.Printf("... %d blocks written (group-commit fsync on every replica)\n", *blocks)
	var buf []byte
	for b := 0; b < *blocks; b++ {
		out, data, err := c.Get(int64(b))
		if err != nil {
			log.Fatal(err)
		}
		buf = data
		if !bytes.Equal(data, payload(int64(b), *size)) {
			log.Fatalf("block %d: wrong bytes", b)
		}
		if b < 3 {
			fmt.Printf("GET %2d: device %d, response %.4f ms, %d bytes ok\n", b, out.Device, out.RespMS, len(data))
		}
	}
	fmt.Printf("... %d blocks read back byte-for-byte\n\n", *blocks)
	_ = buf

	// 2. Fail, write degraded, recover, resilver.
	const victim = 0
	if _, _, err := c.Fail(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device %d failed; writing %d blocks degraded\n", victim, *blocks)
	all := make([]int64, 0, 2**blocks)
	for b := 0; b < 2**blocks; b++ {
		all = append(all, int64(b))
	}
	for b := *blocks; b < 2**blocks; b++ {
		if _, err := c.Put(int64(b), payload(int64(b), *size)); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := c.Recover(victim); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := 0
		for _, b := range all {
			if holdsReplica(arr, b, victim) && !store.Has(victim, b) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("resilver incomplete: %d blocks missing on device %d", missing, victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("device %d recovered; resilver restored every replica it holds\n\n", victim)
	c.Close()
	srv.Close()
	store.Close()

	// 3. Cold restart: the index is rebuilt from the volume files alone.
	srv2, _, store2, addr2, err := startServer(dir)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := qosnet.DialBinary(addr2)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range all {
		_, data, err := c2.Get(b)
		if err != nil || !bytes.Equal(data, payload(b, *size)) {
			log.Fatalf("block %d after cold restart: %v", b, err)
		}
	}
	fmt.Printf("cold restart: index rebuilt from volumes, all %d blocks served byte-for-byte\n", len(all))
	c2.Close()
	srv2.Close()
	store2.Close()
}

func holdsReplica(arr *shard.Array, block int64, dev int) bool {
	sh := arr.ShardOf(block)
	base := sh * arr.DevicesPerShard()
	for _, d := range arr.System(sh).Replicas(block) {
		if base+d == dev {
			return true
		}
	}
	return false
}
