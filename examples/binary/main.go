// Binary: drive the framed binary wire protocol end to end — pipelined
// submissions, out-of-order completion by request ID, and (with -compare)
// a head-to-head throughput measurement against the text line protocol on
// the same server.
//
// The demo starts an in-process server accepting both protocols, then:
//
//  1. Pipelines a burst of reads over one binary connection with
//     SubmitAsync and prints the completions in arrival order, tagging
//     each with its request ID — admission outcomes come back as the
//     engine finishes them, not in submission order.
//  2. Exercises the control verbs (MAP, STATS, HEALTH) over the same
//     multiplexed connection while data requests are still in flight.
//  3. With -compare, measures ops/s for N pipelined submissions over the
//     text protocol and the binary protocol and prints the ratio — the
//     framing, not the admission engine, is the variable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/qosnet"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

func main() {
	burst := flag.Int("burst", 12, "pipelined reads for the out-of-order demo")
	compare := flag.Bool("compare", false, "measure text vs binary protocol throughput")
	compareOps := flag.Int("compare-ops", 30000, "submissions per protocol for -compare")
	flag.Parse()

	arr, err := shard.New(1, core.Config{N: 9, C: 3, M: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := arr.NewHealthMonitors(200, health.Config{}); err != nil {
		log.Fatal(err)
	}
	srv := qosnet.NewServerSharded(arr, qosnet.Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := qosnet.DialBinary(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 1. Pipelined burst: enqueue every read before reading any result.
	fmt.Printf("== %d pipelined reads over one binary connection ==\n", *burst)
	chans := make([]<-chan qosnet.SubmitResult, *burst)
	for i := range chans {
		chans[i] = c.SubmitAsync(int64(i * 7))
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  block %3d -> id=%2d device=%d delay=%.3fms resp=%.3fms\n",
			i*7, r.ID, r.Device, r.DelayMS, r.RespMS)
	}

	// 2. Control verbs multiplex over the same connection.
	fmt.Println("== control verbs on the same connection ==")
	db, devs, err := c.Map(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MAP 42    -> design block %d on devices %v\n", db, devs)
	reqs, delayed, rejected, _, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  STATS     -> %d requests, %d delayed, %d rejected\n", reqs, delayed, rejected)
	h, err := c.Health()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  HEALTH    -> %d/%d devices alive, S'=%d\n", h.Alive, h.Devices, h.EffectiveS)

	if !*compare {
		return
	}

	// 3. Same server, same pipeline depth, two framings.
	fmt.Printf("== text vs binary, %d pipelined submissions each ==\n", *compareOps)
	textOps := textThroughput(addr.String(), *compareOps)
	binOps := binaryThroughput(addr.String(), *compareOps)
	fmt.Printf("  text   %10.0f ops/s\n", textOps)
	fmt.Printf("  binary %10.0f ops/s  (%.2fx)\n", binOps, binOps/textOps)
}

// textThroughput pipelines n READ lines over one text connection and
// returns ops/s.
func textThroughput(addr string, n int) float64 {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	const window = 256
	w := bufio.NewWriterSize(conn, 32768)
	r := bufio.NewReaderSize(conn, 32768)
	start := time.Now()
	inFlight := 0
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "READ %d\n", i)
		inFlight++
		if inFlight == window {
			w.Flush()
			for ; inFlight > 0; inFlight-- {
				line, err := r.ReadString('\n')
				if err != nil {
					log.Fatal(err)
				}
				if strings.HasPrefix(line, "ERR") {
					log.Fatalf("text protocol: %s", line)
				}
			}
		}
	}
	w.Flush()
	for ; inFlight > 0; inFlight-- {
		if _, err := r.ReadString('\n'); err != nil {
			log.Fatal(err)
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

// binaryThroughput pipelines n OpSubmit frames over one binary connection
// and returns ops/s.
func binaryThroughput(addr string, n int) float64 {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	const window = 256
	w := bufio.NewWriterSize(conn, 32768)
	rd := wire.NewReader(bufio.NewReaderSize(conn, 32768), 0)
	var frame [wire.HeaderSize + 8]byte
	start := time.Now()
	inFlight := 0
	for i := 0; i < n; i++ {
		payload := wire.AppendBlock(frame[wire.HeaderSize:wire.HeaderSize], int64(i))
		wire.PutHeader(frame[:], wire.Header{
			Opcode: wire.OpSubmit, ID: uint64(i), Len: uint32(len(payload)),
		})
		w.Write(frame[:])
		inFlight++
		if inFlight == window {
			w.Flush()
			for ; inFlight > 0; inFlight-- {
				if _, _, err := rd.Next(); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	w.Flush()
	for ; inFlight > 0; inFlight-- {
		if _, _, err := rd.Next(); err != nil {
			log.Fatal(err)
		}
	}
	return float64(n) / time.Since(start).Seconds()
}
