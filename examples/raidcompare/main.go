// Raidcompare: the paper's Table III scenario — the (9,3,1) design-
// theoretic allocation versus RAID-1 mirrored and RAID-1 chained under
// synthetic batch workloads, reporting I/O driver response times.
package main

import (
	"flag"
	"fmt"
	"log"

	"flashqos/internal/experiments"
)

func main() {
	requests := flag.Int("requests", 10000, "requests per workload")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	rows, err := experiments.TableIIIAllocationComparison(*requests, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I/O driver response times, %d requests per workload (ms):\n\n", *requests)
	fmt.Printf("%-4s %-9s %-26s %8s %8s %8s %6s\n", "k", "T (ms)", "scheme", "avg", "std", "max", "meets")
	for _, r := range rows {
		fmt.Printf("%-4d %-9.3f %-26s %8.3f %8.3f %8.3f %6v\n",
			r.Case.RequestSize, r.Case.IntervalMS, r.Scheme, r.Avg, r.Std, r.Max, r.Met)
	}
	fmt.Println("\nonly the design-theoretic allocation meets its guarantee at every size;")
	fmt.Println("RAID-1 mirrored collapses at k=27 because each 3-device mirror group is saturated.")
}
