// Statistical: the paper's Fig 10 scenario — tuning ε trades delayed
// requests against response time. ε = 0 is the deterministic guarantee
// (everything over capacity is delayed); larger ε admits conflicting
// requests, cutting delays at the cost of queueing.
package main

import (
	"flag"
	"fmt"
	"log"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/sampling"
	"flashqos/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	scale := flag.Float64("scale", 0.05, "trace scale")
	flag.Parse()

	tr, err := trace.ExchangeLike(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := design.Paper931()

	// Sample the optimal-retrieval probabilities of the design once
	// (the paper's Fig 4 table) and share across ε runs.
	base, err := core.New(core.Config{Design: d})
	if err != nil {
		log.Fatal(err)
	}
	table, err := sampling.Estimate(base.Allocator(), sampling.Options{
		MaxK: 2*d.N + base.S(), Trials: 10000, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sampled optimal-retrieval probabilities (Fig 4):")
	for k := base.S(); k <= d.N+1; k++ {
		fmt.Printf("  P[%2d] = %.3f\n", k, table.At(k))
	}

	fmt.Printf("\n%8s %12s %16s\n", "epsilon", "delayed %", "avg response ms")
	for _, eps := range []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01} {
		sys, err := core.New(core.Config{Design: d, Epsilon: eps, Table: table})
		if err != nil {
			log.Fatal(err)
		}
		rep := sys.ReplayTrace(tr)
		fmt.Printf("%8.4f %11.2f%% %16.6f\n", eps, rep.DelayedPct, rep.AvgResponse)
	}
	fmt.Println("\ntrend (paper Fig 10): delayed% falls and response time rises with epsilon")
}
