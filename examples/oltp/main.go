// OLTP: the paper's Fig 9 scenario — a TPC-E-like brokerage workload on a
// 13-volume flash array using the (13,3,1) design, deterministic QoS with
// online retrieval, versus the original stand.
package main

import (
	"flag"
	"fmt"
	"log"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	scale := flag.Float64("scale", 0.05, "trace scale")
	flag.Parse()

	tr, err := trace.TPCELike(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := design.Paper1331()
	fmt.Printf("workload: %s, %d requests over %d parts; design %s\n",
		tr.Name, len(tr.Records), tr.NumIntervals(), d)

	sys, err := core.New(core.Config{Design: d})
	if err != nil {
		log.Fatal(err)
	}
	qos := sys.ReplayTrace(tr)
	orig, err := core.ReplayOriginal(tr, d.N, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-part results:")
	fmt.Printf("%-5s %10s %10s %10s %10s %9s %9s %9s\n",
		"part", "qos-avg", "qos-max", "orig-avg", "orig-max", "delayed%", "avgdelay", "fim%")
	for i, iv := range qos.Intervals {
		o := orig.Intervals[i]
		fmt.Printf("%-5d %10.4f %10.4f %10.4f %10.4f %8.2f%% %9.4f %8.1f%%\n",
			iv.Index, iv.AvgResponse, iv.MaxResponse, o.AvgResponse, o.MaxResponse,
			iv.DelayedPct, iv.AvgDelay, iv.FIMMatchPct)
	}
	fmt.Printf("\noverall: delayed %.2f%% by %.4f ms avg (paper: 2-3%%, ~0.03 ms); original avg %.6f ms violates the %.6f ms guarantee: %v\n",
		qos.DelayedPct, qos.AvgDelay, orig.AvgResponse, 0.132507, orig.MaxResponse > 0.133)
}
