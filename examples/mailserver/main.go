// Mailserver: the paper's Fig 8 scenario — an Exchange-like mail-server
// workload on a 9-module flash array with deterministic QoS, FIM block
// mapping and online retrieval, compared against replaying the trace on
// its original devices.
package main

import (
	"flag"
	"fmt"
	"log"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	scale := flag.Float64("scale", 0.05, "trace scale")
	flag.Parse()

	tr, err := trace.ExchangeLike(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d requests over %d intervals\n", tr.Name, len(tr.Records), tr.NumIntervals())

	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		log.Fatal(err)
	}
	qos := sys.ReplayTrace(tr)
	orig, err := core.ReplayOriginal(tr, 9, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-interval response times (ms) — QoS flat at the guarantee, original above it:")
	fmt.Printf("%-4s %10s %10s %10s %10s %9s %9s\n", "int", "qos-avg", "qos-max", "orig-avg", "orig-max", "delayed%", "avgdelay")
	for i, iv := range qos.Intervals {
		if i%8 != 0 { // print every 8th interval to keep the demo short
			continue
		}
		o := orig.Intervals[i]
		fmt.Printf("%-4d %10.4f %10.4f %10.4f %10.4f %8.2f%% %9.4f\n",
			iv.Index, iv.AvgResponse, iv.MaxResponse, o.AvgResponse, o.MaxResponse, iv.DelayedPct, iv.AvgDelay)
	}
	fmt.Printf("\noverall: QoS max %.4f ms (guarantee met: %v) | original max %.4f ms\n",
		qos.MaxResponse, qos.MaxResponse <= 0.133, orig.MaxResponse)
	fmt.Printf("delayed: %.2f%% of requests, by %.4f ms on average (paper: ~7%%, ~0.14 ms)\n",
		qos.DelayedPct, qos.AvgDelay)
}
