package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"flashqos/internal/blockmap"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/fim"
	"flashqos/internal/qosnet"
	"flashqos/internal/trace"
)

// TestPipelineTraceFileMineReplay drives the full offline pipeline the way
// a user of the CLI tools would: synthesize a workload, write it to disk in
// the ASCII format, read it back, mine the first interval, build the block
// mapping, and replay the whole trace through the QoS system.
func TestPipelineTraceFileMineReplay(t *testing.T) {
	tr, err := trace.TPCELike(21, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tpce.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(loaded.Records), len(tr.Records))
	}
	if loaded.IntervalMS != tr.IntervalMS {
		t.Fatal("interval metadata lost")
	}

	// Mine interval 0 and check that the mapping separates at least one
	// frequent pair onto different device sets.
	txs := fim.TransactionsFromRecords(loaded.Interval(0), 0.133)
	pairs := fim.MinePairs(txs, 2)
	if len(pairs) == 0 {
		t.Fatal("OLTP interval mined no frequent pairs")
	}
	mapper, err := blockmap.NewMapper(78) // (13,3,1) rotations
	if err != nil {
		t.Fatal(err)
	}
	mapper.BuildFromPairs(pairs)
	if got := mapper.ConflictSupport(pairs); got > pairs[0].Support {
		t.Errorf("conflict support %d too high after mapping", got)
	}

	// Full replay through the QoS system.
	sys, err := core.New(core.Config{Design: design.Paper1331()})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.ReplayTrace(loaded)
	if rep.Requests != len(loaded.Records) {
		t.Fatalf("replayed %d of %d requests", rep.Requests, len(loaded.Records))
	}
	if math.Abs(rep.MaxResponse-0.132507) > 1e-9 {
		t.Errorf("deterministic guarantee broken: max response %.6f", rep.MaxResponse)
	}
}

// TestPipelineServer runs the TCP service end to end: a server wrapping a
// QoS system, a client submitting a workload burst, and the admission
// accounting matching what the client observed.
func TestPipelineServer(t *testing.T) {
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	srv := qosnet.NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	c, err := qosnet.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	delayedSeen := int64(0)
	for i := int64(0); i < 200; i++ {
		res, err := c.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			t.Fatal("delay policy must not reject")
		}
		if res.Delayed {
			delayedSeen++
		}
		if res.RespMS > 0.133 {
			t.Fatalf("request %d response %.6f exceeds guarantee", i, res.RespMS)
		}
	}
	reqs, delayed, rejected, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reqs != 200 || rejected != 0 {
		t.Errorf("stats: reqs=%d rejected=%d", reqs, rejected)
	}
	if delayed != delayedSeen {
		t.Errorf("server counted %d delayed, client saw %d", delayed, delayedSeen)
	}
}

// TestPipelineSyntheticMatchesPaperGuarantees is the Table III headline as
// an integration test: generate the paper's synthetic workload, replay on
// the interval-aligned system, and confirm the guarantee for all of
// M ∈ {1, 2, 3}.
func TestPipelineSyntheticMatchesPaperGuarantees(t *testing.T) {
	cases := []struct {
		m        int
		k        int
		interval float64
	}{
		{1, 5, 0.133},
		{2, 14, 0.266},
		{3, 27, 0.399},
	}
	for _, cse := range cases {
		tr, err := trace.Synthetic(trace.SyntheticConfig{
			IntervalMS: cse.interval, BlocksPerInterval: cse.k,
			TotalRequests: 5 * cse.k * 50, PoolSize: 36, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.New(core.Config{
			Design: design.Paper931(), M: cse.m, IntervalMS: cse.interval,
			Mode: core.IntervalAligned, DisableFIM: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := sys.ReplayTrace(tr)
		if rep.MaxResponse > cse.interval+1e-9 {
			t.Errorf("M=%d: max response %.4f exceeds interval %.3f", cse.m, rep.MaxResponse, cse.interval)
		}
	}
}

// TestPipelineTracegenFormatStability guards the on-disk format: a trace
// written by this version must parse to identical bytes when re-written.
func TestPipelineTracegenFormatStability(t *testing.T) {
	tr, err := trace.Synthetic(trace.SyntheticConfig{
		IntervalMS: 0.133, BlocksPerInterval: 5, TotalRequests: 200, PoolSize: 36, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := trace.Write(&a, tr); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := trace.Write(&b, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("format round trip is not byte-stable")
	}
}
