module flashqos

go 1.22
