// Package-level benchmark harness: one benchmark per paper table/figure
// (see DESIGN.md §4). Each benchmark runs the corresponding experiment at
// a reduced-but-representative size and reports domain metrics via
// b.ReportMetric alongside the usual ns/op, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The experiments package's tests assert
// the shapes; these benchmarks measure the cost of producing them.
package main

import (
	"testing"

	"flashqos/internal/experiments"
)

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableI()
		if len(res.Periods) != 4 {
			b.Fatal("worked example broken")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if m, _ := experiments.Fig3NonConflicting(); m != 1 {
			b.Fatal("Fig 3 should need exactly 1 access")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	var p9 float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4Probabilities(4000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		p9 = tab.At(9)
	}
	b.ReportMetric(p9, "P9")
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIIRetrievalComparison(500, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("want 6 rows")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	var dtMax float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIIIAllocationComparison(3000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		dtMax = rows[len(rows)-1].Max
	}
	b.ReportMetric(dtMax, "dt-max-ms")
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ex, tp, err := experiments.Fig6TraceStats(int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		if len(ex) == 0 || len(tp) == 0 {
			b.Fatal("empty stats")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	var delayed float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8ExchangeDeterministic(int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		delayed = res.QoS.DelayedPct
	}
	b.ReportMetric(delayed, "delayed%")
}

func BenchmarkFig9(b *testing.B) {
	var delayed float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9TPCEDeterministic(int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		delayed = res.QoS.DelayedPct
	}
	b.ReportMetric(delayed, "delayed%")
}

func BenchmarkFig10(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10Statistical(experiments.Exchange, []float64{0, 0.2}, int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[0].DelayedPct - rows[1].DelayedPct
	}
	b.ReportMetric(spread, "delayed%-drop")
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIVFIMPerformance(int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 4 {
			b.Fatal("too few rows")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	var tpMean float64
	for i := 0; i < b.N; i++ {
		_, mean, err := experiments.Fig11FIMBenefit(experiments.TPCE, int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		tpMean = mean
	}
	b.ReportMetric(tpMean, "tpce-match%")
}

func BenchmarkFig12(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12RetrievalComparison(experiments.TPCE, int64(i+1), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		var on, al float64
		for _, r := range rows {
			on += r.OnlineAvgDelay
			al += r.AlignedAvgDelay
		}
		gap = (al - on) / float64(len(rows))
	}
	b.ReportMetric(gap, "aligned-minus-online-ms")
}

func BenchmarkAblationSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSchemes(5, 200, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMaxflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMaxflow(10, 200, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFIM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFIM(experiments.TPCE, int64(i+1), 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDesignSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDesignSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Layouts(12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGCInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGCInterference([]float64{0, 0.3}, 2000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeterogeneous(2.0, 100, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFailure(2, 200, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationArrayGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationArrayGC([]float64{0.3}, 2000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFairness(b *testing.B) {
	var jain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFairness(4, 1000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		jain = res.JainIndex
	}
	b.ReportMetric(jain, "jain")
}

func BenchmarkAblationMClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMClock(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpatial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSpatialQueries(5, 200, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClosedLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClosedLoop(500, []int{2, 2, 1}, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepDesigns(int64(i+1), 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
