package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flashqos/internal/qosnet"
)

// proc is one spawned daemon: its command, bound address (parsed from the
// startup banner) and the rest of its output.
type proc struct {
	cmd  *exec.Cmd
	addr string
	rest *bytes.Buffer
	wg   *sync.WaitGroup
}

// start launches a daemon binary and parses "listening on <addr>" from the
// first stdout line.
func start(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("%s produced no output: %v", filepath.Base(bin), sc.Err())
	}
	banner := sc.Text()
	i := strings.LastIndex(banner, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected banner %q", banner)
	}
	p := &proc{cmd: cmd, addr: strings.TrimSpace(banner[i+len("listening on "):]),
		rest: &bytes.Buffer{}, wg: &sync.WaitGroup{}}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for sc.Scan() {
			p.rest.WriteString(sc.Text())
			p.rest.WriteByte('\n')
		}
	}()
	return p
}

// admittedWithin counts batch outcomes admitted within horizonMS of their
// arrival — the per-horizon guaranteed capacity a client actually observes.
func admittedWithin(outs []qosnet.ReadResult, horizonMS float64) int {
	n := 0
	for _, o := range outs {
		if !o.Rejected && o.DelayMS <= horizonMS {
			n++
		}
	}
	return n
}

// TestProxyEndToEnd builds qosd and qosproxy, runs two qosd backends with
// a proxy in front, and checks the full verb surface, the additive
// admission capacity of the two-backend cluster, and that a device failure
// on one backend degrades service without client-visible errors.
func TestProxyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the qosd and qosproxy binaries")
	}
	dir := t.TempDir()
	qosdBin := filepath.Join(dir, "qosd")
	proxyBin := filepath.Join(dir, "qosproxy")
	if out, err := exec.Command("go", "build", "-o", qosdBin, "flashqos/cmd/qosd").CombinedOutput(); err != nil {
		t.Fatalf("go build qosd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", proxyBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build qosproxy: %v\n%s", err, out)
	}

	b0 := start(t, qosdBin, "-addr", "127.0.0.1:0", "-proto", "binary", "-drain-timeout", "2s")
	b1 := start(t, qosdBin, "-addr", "127.0.0.1:0", "-proto", "binary", "-drain-timeout", "2s")
	px := start(t, proxyBin,
		"-listen", "127.0.0.1:0",
		"-backends", b0.addr+","+b1.addr,
		"-probe-interval", "200ms",
	)

	c, err := qosnet.DialBinary(px.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Full verb surface through the proxy.
	res, err := c.Read(42)
	if err != nil {
		t.Fatalf("READ: %v", err)
	}
	if res.Rejected || res.Device < 0 || res.Device >= 18 {
		t.Errorf("READ 42 = %+v, want admission on a global device in [0,18)", res)
	}
	if res, err = c.Write(43); err != nil {
		t.Fatalf("WRITE: %v", err)
	} else if !res.Rejected && (res.Device < 0 || res.Device >= 18) {
		t.Errorf("WRITE 43 device %d outside the global range", res.Device)
	}
	db, devs, err := c.Map(42)
	if err != nil {
		t.Fatalf("MAP: %v", err)
	}
	if db != 42%36 || len(devs) != 3 {
		t.Errorf("MAP 42 = (%d, %v), want design block %d with 3 replicas", db, devs, 42%36)
	}
	if _, _, _, _, err := c.Stats(); err != nil {
		t.Fatalf("STATS: %v", err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("METRICS: %v", err)
	}
	if !strings.Contains(m, "flashqos_proxy_backends 2") {
		t.Errorf("METRICS missing proxy backend gauge:\n%s", m)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatalf("HEALTH: %v", err)
	}
	if h.Devices != 18 || h.Alive != 18 {
		t.Errorf("HEALTH = %d devices / %d alive, want 18 / 18", h.Devices, h.Alive)
	}
	gs, err := c.ShardStats()
	if err != nil {
		t.Fatalf("SHARDSTATS: %v", err)
	}
	if len(gs) != 2 {
		t.Errorf("SHARDSTATS returned %d gauges, want 2", len(gs))
	}

	// Additive capacity: one 600-block joint batch through the proxy
	// admits roughly twice as many requests within a fixed horizon as the
	// same batch against a single backend, because each backend fills its
	// own S-per-interval budget independently.
	blocks := make([]int64, 600)
	for i := range blocks {
		blocks[i] = int64(i)
	}
	const horizonMS = 3.0
	outs, err := c.Batch(blocks)
	if err != nil {
		t.Fatalf("BATCH via proxy: %v", err)
	}
	viaProxy := admittedWithin(outs, horizonMS)

	// Let the windows the proxy batch reserved (a few ms ahead) pass, so
	// the single-backend measurement starts from an uncongested clock.
	time.Sleep(25 * time.Millisecond)
	direct, err := qosnet.DialBinary(b0.addr)
	if err != nil {
		t.Fatal(err)
	}
	outs, err = direct.Batch(blocks)
	direct.Close()
	if err != nil {
		t.Fatalf("BATCH direct: %v", err)
	}
	viaSingle := admittedWithin(outs, horizonMS)
	if viaSingle == 0 {
		t.Fatal("single backend admitted nothing within the horizon")
	}
	if ratio := float64(viaProxy) / float64(viaSingle); ratio < 1.4 {
		t.Errorf("proxy admitted %d within %gms vs %d on one backend (ratio %.2f), want >= 1.4x",
			viaProxy, horizonMS, viaSingle, ratio)
	}

	// A device failure on one backend degrades capacity, not correctness:
	// every verb keeps answering without client-visible errors.
	if state, _, err := c.Fail(9); err != nil || state != "failed" {
		t.Fatalf("FAIL 9 = (%q, %v), want failed", state, err)
	}
	h, err = c.Health()
	if err != nil {
		t.Fatalf("HEALTH after FAIL: %v", err)
	}
	if h.Alive != 17 {
		t.Errorf("HEALTH alive = %d after failing one device, want 17", h.Alive)
	}
	for block := int64(0); block < 100; block++ {
		if _, err := c.Read(block); err != nil {
			t.Fatalf("READ %d after device failure: %v", block, err)
		}
	}
	if _, _, err := c.Recover(9); err != nil {
		t.Fatalf("RECOVER 9: %v", err)
	}
	c.Close()

	// Clean shutdown of the proxy on SIGINT.
	if err := px.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() {
		px.wg.Wait()
		waited <- px.cmd.Wait()
	}()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("qosproxy exited with %v, want clean exit", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("qosproxy did not exit after SIGINT")
	}
	if out := px.rest.String(); !strings.Contains(out, "qosproxy: bye") {
		t.Errorf("farewell missing from proxy output:\n%s", out)
	}
	for _, b := range []*proc{b0, b1} {
		b.cmd.Process.Signal(os.Interrupt)
	}
}
