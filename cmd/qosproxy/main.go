// Command qosproxy is a stateless binary-protocol router in front of K
// independent qosd backends (see internal/proxy). Blocks are
// hash-partitioned across the backends with the shard layer's splitmix64
// rule, device ids are globalized, and the aggregate guaranteed admission
// capacity scales to the sum of the backends' S per interval.
//
// Usage:
//
//	qosd -addr 127.0.0.1:7331 -proto binary &
//	qosd -addr 127.0.0.1:7332 -proto binary &
//	qosproxy -listen 127.0.0.1:7330 -backends 127.0.0.1:7331,127.0.0.1:7332
//
// Clients speak the framed binary protocol (internal/wire) to the proxy
// exactly as they would to a single qosd: READ/WRITE/BATCH route by block,
// MAP/FAIL/RECOVER route by global device id, STATS/HEALTH/SHARDSTATS
// aggregate across backends, and METRICS reports the proxy's own gauges.
// Backends must run with a health monitor (qosd's default) — the proxy
// learns the device topology from a HEALTH probe at startup.
//
// A prober ejects backends after -eject-after consecutive failed health
// probes; their blocks answer error frames until a probe succeeds again.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on -pprof
	"os"
	"os/signal"
	"strings"
	"time"

	"flashqos/internal/proxy"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:7330", "client-facing listen address")
		backends      = flag.String("backends", "", "comma-separated qosd backend addresses (required)")
		pool          = flag.Int("pool", proxy.DefaultPoolSize, "pooled binary connections per backend")
		probeInterval = flag.Duration("probe-interval", proxy.DefaultProbeInterval, "backend health-probe period (negative = no probing)")
		ejectAfter    = flag.Int("eject-after", proxy.DefaultEjectAfter, "consecutive probe failures before a backend is ejected")
		readTimeout   = flag.Duration("read-timeout", 5*time.Minute, "per-frame client read deadline (0 = none)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty = off)")
	)
	flag.Parse()

	addrs := strings.Split(*backends, ",")
	n := 0
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			addrs[n] = a
			n++
		}
	}
	addrs = addrs[:n]
	if len(addrs) == 0 {
		log.Fatal("qosproxy: -backends is required (comma-separated qosd addresses)")
	}

	p, err := proxy.New(addrs, proxy.Options{
		PoolSize:      *pool,
		ProbeInterval: *probeInterval,
		EjectAfter:    *ejectAfter,
		ReadTimeout:   *readTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := p.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("qosproxy: pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("qosproxy: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	fmt.Printf("qosproxy: %d backends, devices=%d, pool=%d, probe-interval=%s, eject-after=%d, listening on %s\n",
		p.Backends(), p.Devices(), *pool, *probeInterval, *ejectAfter, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("qosproxy: shutting down")
		p.Close()
	}()
	if err := p.Serve(); err != nil {
		log.Fatal(err)
	}
	p.Close()
	fmt.Println("qosproxy: bye")
}
