// Command qostable builds the optimal-retrieval probability table (Fig 4)
// for a design and caches it as JSON, so statistical-QoS deployments skip
// the Monte-Carlo pass at startup (qosd can load it, and repeated
// experiments share it).
//
// Usage:
//
//	qostable -n 9 -c 3 -trials 100000 -o table-9-3.json
//	qostable -n 13 -c 3 | head
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/sampling"
)

func main() {
	var (
		n      = flag.Int("n", 9, "devices")
		c      = flag.Int("c", 3, "copies")
		maxK   = flag.Int("maxk", 0, "largest request size (default 2N+S(1))")
		trials = flag.Int("trials", 50000, "Monte-Carlo trials per size")
		seed   = flag.Int64("seed", 1, "RNG seed")
		out    = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	d, err := design.ForParams(*n, *c)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := decluster.NewDesignTheoretic(d)
	if err != nil {
		log.Fatal(err)
	}
	if *maxK == 0 {
		*maxK = 2*d.N + d.S(1)
	}
	tab, err := sampling.Estimate(alloc, sampling.Options{MaxK: *maxK, Trials: *trials, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tab.Save(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sampled %s: P up to k=%d at %d trials (P[S+1]=%.4f, P[N]=%.4f)\n",
		d, *maxK, *trials, tab.At(d.S(1)+1), tab.At(d.N))
}
