// Command fimtool mines a trace file for frequent block pairs (the §IV-A
// mining step) and reports the Table IV performance metrics: mining time,
// memory allocated, and the frequent pairs found.
//
// Usage:
//
//	fimtool -window 0.133 -support 2 trace.file
//	tracegen -kind tpce | fimtool -support 3 -top 20 -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flashqos/internal/fim"
	"flashqos/internal/trace"
)

func main() {
	var (
		window  = flag.Float64("window", 0.133, "co-occurrence window (ms)")
		support = flag.Int("support", 2, "minimum pair support")
		top     = flag.Int("top", 10, "pairs to print (0 = none)")
		algo    = flag.String("algo", "pairs", "pairs | pcy | apriori | eclat | fpgrowth")
		maxSize = flag.Int("maxsize", 2, "apriori/eclat: maximum itemset size")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fimtool [flags] <trace-file | ->")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Read(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	txs := fim.TransactionsFromRecords(tr.Records, *window)
	fmt.Printf("trace: %d records -> %d transactions (window %.3f ms)\n", len(tr.Records), len(txs), *window)

	switch *algo {
	case "pairs", "pcy":
		var pairs []fim.Pair
		st := fim.Measure(func() {
			if *algo == "pcy" {
				pairs = fim.MinePairsPCY(txs, fim.PCYOptions{MinSupport: *support})
			} else {
				pairs = fim.MinePairs(txs, *support)
			}
		})
		fmt.Printf("mined %d frequent pairs in %v (%.1f MB allocated)\n", len(pairs), st.Duration, st.AllocMB)
		for i, p := range pairs {
			if i >= *top {
				break
			}
			fmt.Printf("  (%d, %d) support %d\n", p.A, p.B, p.Support)
		}
	case "apriori", "eclat", "fpgrowth":
		var sets []fim.Itemset
		st := fim.Measure(func() {
			switch *algo {
			case "apriori":
				sets = fim.Apriori(txs, *support, *maxSize)
			case "eclat":
				sets = fim.Eclat(txs, *support, *maxSize)
			default:
				sets = fim.FPGrowth(txs, *support, *maxSize)
			}
		})
		fmt.Printf("mined %d frequent itemsets in %v (%.1f MB allocated)\n", len(sets), st.Duration, st.AllocMB)
		for i, s := range sets {
			if i >= *top {
				break
			}
			fmt.Printf("  %v support %d\n", s.Items, s.Support)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}
