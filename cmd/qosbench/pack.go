package main

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"flashqos/internal/pack"
)

// printPack microbenchmarks the pack storage engine on real files in a
// temp directory: an append-heavy write stream (no fsync, pure engine
// cost), group-committed durable writes, and random reads from a resident
// working set. Results print as ns/op plus payload throughput, matching
// the go-bench lines gated by cmd/benchgate in CI.
func printPack(w io.Writer) error {
	const (
		payload  = 4096
		resident = 4096 // blocks preloaded for the read benchmark
	)
	dir, err := os.MkdirTemp("", "qosbench-pack-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i * 13)
	}

	appendRes := testing.Benchmark(func(b *testing.B) {
		st, err := pack.Open(dir+"/append", 4, pack.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.SetBytes(payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put(i&3, int64(i), buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	syncedRes := testing.Benchmark(func(b *testing.B) {
		st, err := pack.Open(dir+"/synced", 4, pack.Options{SyncInterval: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.SetBytes(payload)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := st.Put(i&3, int64(i), buf); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})

	getRes := testing.Benchmark(func(b *testing.B) {
		st, err := pack.Open(dir+"/read", 4, pack.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		for i := 0; i < resident; i++ {
			if err := st.Put(i&3, int64(i), buf); err != nil {
				b.Fatal(err)
			}
		}
		var dst []byte
		b.SetBytes(payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := int64((i * 2654435761) % resident)
			dst, err = st.Get(int(blk)&3, blk, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	fmt.Fprintf(w, "pack storage engine, %d-byte payloads:\n", payload)
	line := func(name string, r testing.BenchmarkResult) {
		perOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbs := float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		fmt.Fprintf(w, "  %-24s %10d ops %12.0f ns/op %10.1f MB/s\n", name, r.N, perOp, mbs)
	}
	line("append (no fsync)", appendRes)
	line("put (group commit)", syncedRes)
	line("random read", getRes)
	return nil
}
