// Command qosbench regenerates the paper's tables and figures from the
// experiment harness and prints them as text tables/series.
//
// Usage:
//
//	qosbench -run all
//	qosbench -run table3 -requests 10000
//	qosbench -run fig10 -scale 0.1 -seed 7
//
// Experiments: table1, table2, table3, table4, fig2, fig3, fig4, fig6,
// fig7, fig8, fig9, fig10, fig11, fig12, guarantees, schemes, fim,
// maxflow, designs, gc, hetero, failure, arraygc, fairness, mclock,
// confidence, spatial, closedloop, sweep, shards, statpar, pack, report,
// all. Use
// -parallel to run the selection concurrently and -run report for a
// self-contained markdown report. -cpuprofile/-memprofile write pprof
// profiles of the run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"flashqos/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment to run (comma-separated, or 'all')")
		seed     = flag.Int64("seed", 42, "workload seed")
		scale    = flag.Float64("scale", 0.1, "trace scale factor (1.0 = full calibrated size)")
		requests = flag.Int("requests", 10000, "synthetic requests for table3")
		trials   = flag.Int("trials", 20000, "sampling trials for fig4/table2")
		parallel = flag.Bool("parallel", false, "run the selected experiments concurrently")
		seeds    = flag.Int("seeds", 5, "seeds for the confidence experiment")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	all := map[string]func(io.Writer) error{
		"table1":     func(w io.Writer) error { return printTable1(w) },
		"table2":     func(w io.Writer) error { return printTable2(w, *trials, *seed) },
		"table3":     func(w io.Writer) error { return printTable3(w, *requests, *seed) },
		"table4":     func(w io.Writer) error { return printTable4(w, *seed, *scale) },
		"fig2":       func(w io.Writer) error { return printFig2(w) },
		"fig3":       func(w io.Writer) error { return printFig3(w) },
		"fig7":       func(w io.Writer) error { return printFig7(w) },
		"fig4":       func(w io.Writer) error { return printFig4(w, *trials, *seed) },
		"fig6":       func(w io.Writer) error { return printFig6(w, *seed, *scale) },
		"fig8":       func(w io.Writer) error { return printFig89(w, experiments.Exchange, *seed, *scale) },
		"fig9":       func(w io.Writer) error { return printFig89(w, experiments.TPCE, *seed, *scale) },
		"fig10":      func(w io.Writer) error { return printFig10(w, *seed, *scale) },
		"fig11":      func(w io.Writer) error { return printFig11(w, *seed, *scale) },
		"fig12":      func(w io.Writer) error { return printFig12(w, *seed, *scale) },
		"guarantees": func(w io.Writer) error { return printGuarantees(w) },
		"schemes":    func(w io.Writer) error { return printSchemes(w, *seed) },
		"fim":        func(w io.Writer) error { return printFIMAblation(w, *seed, *scale) },
		"maxflow":    func(w io.Writer) error { return printMaxflowAblation(w, *seed) },
		"designs":    func(w io.Writer) error { return printDesigns(w) },
		"gc":         func(w io.Writer) error { return printGCAblation(w, *seed) },
		"failure":    func(w io.Writer) error { return printFailureAblation(w, *seed) },
		"arraygc":    func(w io.Writer) error { return printArrayGC(w, *seed) },
		"fairness":   func(w io.Writer) error { return printFairness(w, *seed) },
		"mclock":     func(w io.Writer) error { return printMClock(w, *seed) },
		"confidence": func(w io.Writer) error { return printConfidence(w, *seed, *scale, *seeds) },
		"spatial":    func(w io.Writer) error { return printSpatial(w, *seed) },
		"closedloop": func(w io.Writer) error { return printClosedLoop(w, *seed) },
		"sweep":      func(w io.Writer) error { return printSweep(w, *seed, *scale) },
		"shards":     func(w io.Writer) error { return printShardScaling(w) },
		"statpar":    func(w io.Writer) error { return printStatParallel(w, *seed, *scale) },
		"pack":       func(w io.Writer) error { return printPack(w) },
		"report": func(w io.Writer) error {
			return experiments.WriteReport(w, experiments.ReportConfig{Seed: *seed, Scale: *scale, Requests: *requests, Trials: *trials, Seeds: *seeds})
		},
		"hetero": func(w io.Writer) error { return printHeteroAblation(w, *seed) },
	}
	order := []string{
		"table1", "fig2", "fig3", "fig4", "table2", "table3", "fig7", "fig6",
		"fig8", "fig9", "fig10", "table4", "fig11", "fig12",
		"guarantees", "schemes", "fim", "maxflow", "designs", "gc", "hetero", "failure",
		"arraygc", "fairness", "mclock", "confidence", "spatial", "closedloop", "sweep",
		"shards", "statpar", "pack",
	}

	var targets []string
	if *run == "all" {
		targets = order
	} else {
		targets = strings.Split(*run, ",")
	}
	type job struct {
		name string
		f    func(io.Writer) error
	}
	var jobs []job
	for _, name := range targets {
		name = strings.TrimSpace(name)
		f, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		jobs = append(jobs, job{name, f})
	}
	if !*parallel {
		for _, j := range jobs {
			fmt.Printf("==================== %s ====================\n", j.name)
			if err := j.f(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	// Parallel: each experiment writes into its own buffer; results print
	// in the requested order once all goroutines finish.
	bufs := make([]bytes.Buffer, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			errs[i] = j.f(&bufs[i])
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		fmt.Printf("==================== %s ====================\n", j.name)
		io.Copy(os.Stdout, &bufs[i])
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, errs[i])
			os.Exit(1)
		}
		fmt.Println()
	}
}

func printTable1(w io.Writer) error {
	res := experiments.TableI()
	fmt.Fprintln(w, "Admission (S = 5, (9,3,1) design, M = 1):")
	for _, a := range res.AdmittedApps {
		fmt.Fprintf(w, "  admitted: %s\n", a)
	}
	for _, r := range res.RejectedApps {
		fmt.Fprintf(w, "  rejected: %s\n", r)
	}
	fmt.Fprintln(w, "Retrieval (Fig 5):")
	for _, p := range res.Periods {
		fmt.Fprintf(w, "  %s: %d requests in %d access(es)\n", p.Period, len(p.Requests), p.Accesses)
	}
	return nil
}

func printFig2(w io.Writer) error {
	d := experiments.Fig2Design()
	fmt.Fprintln(w, d)
	for _, b := range d.Blocks {
		fmt.Fprintf(w, "  %v\n", b)
	}
	return d.Verify()
}

func printFig3(w io.Writer) error {
	m, assign := experiments.Fig3NonConflicting()
	fmt.Fprintf(w, "9 non-conflicting requests retrieved in %d access(es)\n", m)
	fmt.Fprintf(w, "assignment: %v\n", assign)
	return nil
}

func printFig7(w io.Writer) error {
	layouts, err := experiments.Fig7Layouts(12)
	if err != nil {
		return err
	}
	for _, l := range layouts {
		fmt.Fprintf(w, "%s\n  blocks:  ", l.Scheme)
		for b, devs := range l.Buckets {
			fmt.Fprintf(w, "b%d%v ", b, devs)
		}
		fmt.Fprintf(w, "\n  devices: ")
		for d, bs := range l.Devices {
			fmt.Fprintf(w, "d%d%v ", d, bs)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func printFig4(w io.Writer, trials int, seed int64) error {
	tab, err := experiments.Fig4Probabilities(trials, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Optimal retrieval probabilities, (9,3,1), %d trials:\n", trials)
	for k := 1; k <= tab.MaxK(); k++ {
		fmt.Fprintf(w, "  P[%2d] = %.4f\n", k, tab.At(k))
	}
	return nil
}

func printTable2(w io.Writer, trials int, seed int64) error {
	rows, err := experiments.TableIIRetrievalComparison(trials, seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printTable3(w io.Writer, requests int, seed int64) error {
	rows, err := experiments.TableIIIAllocationComparison(requests, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Response times (ms), %d requests per workload:\n", requests)
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printFig6(w io.Writer, seed int64, scale float64) error {
	ex, tp, err := experiments.Fig6TraceStats(seed, scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Exchange-like trace (interval: total, avg/s, max/s):")
	var exTotals []float64
	for _, s := range ex {
		fmt.Fprintf(w, "  %3d: %7d %9.1f %9.1f\n", s.Interval, s.Total, s.AvgPerSec, s.MaxPerSec)
		exTotals = append(exTotals, float64(s.Total))
	}
	fmt.Fprintf(w, "  shape: %s\n", spark(downsample(exTotals, 64)))
	fmt.Fprintln(w, "TPC-E-like trace:")
	for _, s := range tp {
		fmt.Fprintf(w, "  %3d: %7d %9.1f %9.1f\n", s.Interval, s.Total, s.AvgPerSec, s.MaxPerSec)
	}
	return nil
}

func printFig89(w io.Writer, wl experiments.Workload, seed int64, scale float64) error {
	res, err := experiments.DeterministicQoS(wl, seed, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: deterministic QoS vs original stand\n", wl)
	fmt.Fprintf(w, "  %-4s %10s %10s %10s %10s %9s %9s\n",
		"int", "qos-avg", "qos-max", "orig-avg", "orig-max", "delayed%", "avgdelay")
	for i, iv := range res.QoS.Intervals {
		var oAvg, oMax float64
		if i < len(res.Original.Intervals) {
			oAvg = res.Original.Intervals[i].AvgResponse
			oMax = res.Original.Intervals[i].MaxResponse
		}
		fmt.Fprintf(w, "  %-4d %10.4f %10.4f %10.4f %10.4f %8.2f%% %9.4f\n",
			iv.Index, iv.AvgResponse, iv.MaxResponse, oAvg, oMax, iv.DelayedPct, iv.AvgDelay)
	}
	var delayedSeries []float64
	for _, iv := range res.QoS.Intervals {
		delayedSeries = append(delayedSeries, iv.DelayedPct)
	}
	fmt.Fprintf(w, "delayed%% shape: %s\n", spark(downsample(delayedSeries, 64)))
	fmt.Fprintf(w, "overall: qos avg/max %.4f/%.4f  orig avg/max %.4f/%.4f  delayed %.2f%% avg delay %.4f ms\n",
		res.QoS.AvgResponse, res.QoS.MaxResponse,
		res.Original.AvgResponse, res.Original.MaxResponse,
		res.QoS.DelayedPct, res.QoS.AvgDelay)
	return nil
}

func printFig10(w io.Writer, seed int64, scale float64) error {
	for _, wl := range []experiments.Workload{experiments.Exchange, experiments.TPCE} {
		rows, err := experiments.Fig10Statistical(wl, experiments.Fig10Epsilons, seed, scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: statistical QoS sweep\n", wl)
		for _, r := range rows {
			fmt.Fprintf(w, "  eps=%.4f delayed=%6.2f%% avg-response=%.4f ms\n", r.Epsilon, r.DelayedPct, r.AvgResponse)
		}
	}
	return nil
}

func printTable4(w io.Writer, seed int64, scale float64) error {
	rows, err := experiments.TableIVFIMPerformance(seed, scale)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printFig11(w io.Writer, seed int64, scale float64) error {
	for _, wl := range []experiments.Workload{experiments.Exchange, experiments.TPCE} {
		rows, mean, err := experiments.Fig11FIMBenefit(wl, seed, scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: FIM match per interval (mean %.1f%%)\n", wl, mean)
		var series []float64
		for _, r := range rows {
			fmt.Fprintf(w, "  %3d: %6.2f%%\n", r.Interval, r.MatchPct)
			series = append(series, r.MatchPct)
		}
		fmt.Fprintf(w, "  shape: %s\n", spark(downsample(series, 64)))
	}
	return nil
}

func printFig12(w io.Writer, seed int64, scale float64) error {
	for _, wl := range []experiments.Workload{experiments.Exchange, experiments.TPCE} {
		rows, err := experiments.Fig12RetrievalComparison(wl, seed, scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: average delay per interval (ms), online vs interval-aligned\n", wl)
		var on, al float64
		for _, r := range rows {
			fmt.Fprintf(w, "  %3d: online %.4f  aligned %.4f\n", r.Interval, r.OnlineAvgDelay, r.AlignedAvgDelay)
			on += r.OnlineAvgDelay
			al += r.AlignedAvgDelay
		}
		if n := float64(len(rows)); n > 0 {
			fmt.Fprintf(w, "  mean: online %.4f  aligned %.4f  (online lower by %.4f)\n", on/n, al/n, (al-on)/n)
		}
	}
	return nil
}

func printGuarantees(w io.Writer) error {
	fmt.Fprintln(w, "c=2 guarantees: design-theoretic vs orthogonal (§II-B3):")
	for _, r := range experiments.GuaranteeComparison(15) {
		fmt.Fprintf(w, "  b=%2d design=%d orthogonal=%d\n", r.Buckets, r.DesignAccesses, r.OrthAccesses)
	}
	return nil
}

func printSchemes(w io.Writer, seed int64) error {
	rows, err := experiments.AblationSchemes(5, 2000, seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		q := "arbitrary"
		if r.Query == experiments.Range {
			q = "range"
		}
		fmt.Fprintf(w, "  %-26s %-9s size=%d avg=%.3f max=%d\n", r.Scheme, q, r.Size, r.AvgCost, r.MaxCost)
	}
	return nil
}

func printFIMAblation(w io.Writer, seed int64, scale float64) error {
	res, err := experiments.AblationFIM(experiments.TPCE, seed, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  with FIM:    delayed %.2f%%, avg delay %.4f ms\n", res.WithFIM.DelayedPct, res.WithFIM.AvgDelay)
	fmt.Fprintf(w, "  modulo only: delayed %.2f%%, avg delay %.4f ms\n", res.ModuloOnly.DelayedPct, res.ModuloOnly.AvgDelay)
	return nil
}

func printMaxflowAblation(w io.Writer, seed int64) error {
	rows, err := experiments.AblationMaxflow(12, 2000, seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  size=%2d fallback=%5.1f%% greedy-avg=%.3f optimal-avg=%.3f greedy-worse=%.2f%%\n",
			r.Size, r.FallbackPct, r.GreedyAvg, r.OptimalAvg, r.GreedyWorse)
	}
	return nil
}

func printGCAblation(w io.Writer, seed int64) error {
	rows, err := experiments.AblationGCInterference([]float64{0, 0.1, 0.2, 0.5}, 20000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "read latency on one SSD module vs write fraction (GC interference):")
	for _, r := range rows {
		fmt.Fprintf(w, "  writes=%.0f%%  read avg=%.4f p99=%.4f max=%.4f ms  gc=%d moved=%d\n",
			100*r.WriteFrac, r.ReadAvgMS, r.ReadP99MS, r.ReadMaxMS, r.GCRuns, r.MovedPages)
	}
	return nil
}

func printFailureAblation(w io.Writer, seed int64) error {
	rows, err := experiments.AblationFailure(2, 2000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "(9,3,1) with failed modules, 5-bucket requests on survivors:")
	for _, r := range rows {
		fmt.Fprintf(w, "  failed=%d  available=%.0f%%  avg-accesses=%.3f max=%d  within-guarantee=%.1f%%\n",
			r.Failed, r.Available, r.AvgAccesses, r.MaxAccesses, r.GuaranteeOK)
	}
	return nil
}

func printHeteroAblation(w io.Writer, seed int64) error {
	rows, err := experiments.AblationHeterogeneous(2.0, 1000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "makespan-aware vs access-count retrieval with 2x-slow modules:")
	for _, r := range rows {
		fmt.Fprintf(w, "  slow=%d  access-count=%.4f ms  makespan-aware=%.4f ms  speedup=%.2fx\n",
			r.SlowModules, r.AccessesMS, r.MakespanMS, r.Improvement)
	}
	return nil
}

func printArrayGC(w io.Writer, seed int64) error {
	rows, err := experiments.AblationArrayGC([]float64{0, 0.1, 0.3, 0.5}, 5000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "QoS steering over FTL-backed modules, background writes:")
	for _, r := range rows {
		fmt.Fprintf(w, "  writes=%.0f%%  plan-max=%.4f  realized avg=%.4f p99=%.4f max=%.4f  within-guarantee=%.1f%%  gc=%d\n",
			100*r.WriteFrac, r.PlannedMaxMS, r.RealizedAvgMS, r.RealizedP99MS, r.RealizedMaxMS, r.GuaranteePct, r.GCRuns)
	}
	return nil
}

func printFairness(w io.Writer, seed int64) error {
	res, err := experiments.AblationFairness(4, 5000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "four identical tenants sharing one QoS array (FCFS admission):")
	for _, tn := range res.Tenants {
		fmt.Fprintf(w, "  tenant %d: %d requests, delayed %.2f%%, avg delay %.4f ms\n",
			tn.Tenant, tn.Requests, tn.DelayedPct, tn.AvgDelay)
	}
	fmt.Fprintf(w, "  Jain fairness index: %.4f\n", res.JainIndex)
	return nil
}

func printMClock(w io.Writer, seed int64) error {
	rows, err := experiments.AblationMClock(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "victim latency under a bursty aggressor (arrival to completion, ms):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s avg=%.4f p99=%.4f max=%.4f flat-response=%v aggressor-shaped=%d\n",
			r.System, r.VictimAvgMS, r.VictimP99MS, r.VictimMaxMS, r.VictimFlatNs, r.AggressorShaped)
	}
	return nil
}

func printConfidence(w io.Writer, seed int64, scale float64, n int) error {
	rows, err := experiments.MultiSeed(experiments.Seeds(seed, n), experiments.HeadlineMetrics(scale))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "headline metrics across %d workload seeds (mean ± std):\n", n)
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printSpatial(w io.Writer, seed int64) error {
	rows, err := experiments.AblationSpatialQueries(5, 2000, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "retrieval cost by query shape on the 6x6 bucket grid (size-5 queries):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %-10v avg=%.3f max=%d\n", r.Scheme, r.Query, r.AvgCost, r.MaxCost)
	}
	return nil
}

func printClosedLoop(w io.Writer, seed int64) error {
	res, err := experiments.AblationClosedLoop(5000, []int{2, 2, 1, 2}, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "closed-loop applications over %d periods (S=5): %d rejected at admission\n", res.Periods, res.RejectedN)
	for _, a := range res.Admitted {
		fmt.Fprintf(w, "  app %s size=%d: %d requests, max response %.6f ms, delayed %.2f%%\n",
			a.App, a.Size, a.Requests, a.MaxResponse, a.DelayedPct)
	}
	return nil
}

func printSweep(w io.Writer, seed int64, scale float64) error {
	rows, err := experiments.SweepDesigns(seed, scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "tunability: the same workload across (N, c, M) configurations:")
	for _, r := range rows {
		fmt.Fprintf(w, "  (%2d,%d,1) M=%d S=%2d: delayed %6.2f%%  avg delay %.4f ms  utilization %.4f\n",
			r.N, r.C, r.M, r.S, r.DelayedPct, r.AvgDelay, r.Utilization)
	}
	return nil
}

func printShardScaling(w io.Writer) error {
	rows, err := experiments.ShardScaling([]int{1, 2, 4, 8}, 50, 80000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "in-guarantee admission throughput vs shard count (open-loop overload):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printStatParallel(w io.Writer, seed int64, scale float64) error {
	rows, err := experiments.ConcurrentStatistical(8, seed, scale, 0.002, 2000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "parallel statistical admission, 8 submitters on a bursty exchange-like trace:")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return nil
}

func printDesigns(w io.Writer) error {
	rows, err := experiments.AblationDesignSize()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  (%2d,%d,1) %-22s S(1)=%2d S(2)=%2d buckets=%3d\n", r.N, r.C, r.Name, r.S1, r.S2, r.Buckets)
	}
	return nil
}
