package main

import "strings"

// spark renders a slice of values as a unicode sparkline, scaling to the
// data range. Used to give the per-interval figure series a visual shape
// in terminal output.
func spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// downsample reduces a series to at most n points by averaging buckets, so
// long series fit on one terminal line.
func downsample(values []float64, n int) []float64 {
	if len(values) <= n || n < 1 {
		return values
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
