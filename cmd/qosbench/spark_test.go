package main

import "testing"

func TestSpark(t *testing.T) {
	if got := spark(nil); got != "" {
		t.Errorf("empty spark = %q", got)
	}
	if got := spark([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Errorf("flat spark = %q, want lowest level", got)
	}
	got := spark([]float64{0, 1})
	if got != "▁█" {
		t.Errorf("ramp spark = %q, want ▁█", got)
	}
	// Monotone input gives non-decreasing levels.
	s := spark([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone input produced non-monotone spark %q", s)
		}
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := downsample(in, 4)
	want := []float64{1.5, 3.5, 5.5, 7.5}
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// No-op when already small enough.
	same := downsample(in, 100)
	if len(same) != len(in) {
		t.Error("short input should pass through")
	}
	if got := downsample(in, 0); len(got) != len(in) {
		t.Error("n<1 should pass through")
	}
}
