package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenSeed42 pins the deterministic experiments' qosbench output at
// the default seed 42 byte-for-byte. The selection covers the admission
// engine end to end (closedloop drives core.Submit over thousands of
// requests) while excluding experiments that report wall-clock rates or
// need minutes of sampling. Regenerate deliberately with -update after an
// intentional behavior change.
func TestGoldenSeed42(t *testing.T) {
	const seed = 42
	sections := []struct {
		name string
		f    func(io.Writer) error
	}{
		{"table1", printTable1},
		{"fig2", printFig2},
		{"fig3", printFig3},
		{"guarantees", printGuarantees},
		{"designs", printDesigns},
		{"closedloop", func(w io.Writer) error { return printClosedLoop(w, seed) }},
		{"failure", func(w io.Writer) error { return printFailureAblation(w, seed) }},
	}
	var got bytes.Buffer
	for _, s := range sections {
		fmt.Fprintf(&got, "==================== %s ====================\n", s.name)
		if err := s.f(&got); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		fmt.Fprintln(&got)
	}

	path := filepath.Join("testdata", "golden_seed42.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, got.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("qosbench output differs from %s (got %d bytes, want %d); regenerate with -update if the change is intentional",
			path, got.Len(), len(want))
	}
}
