// Command benchgate compares a `go test -bench` run against a committed
// baseline and fails when a benchmark regressed past a tolerance — the
// enforcement half of the CI benchmark gate (benchstat renders the same
// comparison for humans; benchgate needs only the standard library, so
// the gate is reproducible locally with no extra tools).
//
// Usage:
//
//	go test ./internal/retrieval -bench BenchmarkOnlineSubmit -benchtime 2s | tee bench-current.txt
//	benchgate -baseline .github/bench-baseline.txt -current bench-current.txt -tolerance 0.10
//
// Benchmarks are matched by name with the trailing -GOMAXPROCS stripped,
// so baselines survive runner core-count changes. Benchmarks present in
// only one file are reported but do not fail the gate; regressions in
// ns/op beyond the tolerance do. Exit status: 0 pass, 1 regression, 2
// usage/parse error.
//
// Besides per-benchmark tolerances, the baseline file may declare ratio
// invariants — shape properties of the current run that must hold no
// matter how fast the runner is, e.g. "sharding must not invert" or "the
// binary protocol must stay ≥3× the text protocol":
//
//	# ratio: BenchmarkBinaryThroughput/shards=4 / BenchmarkBinaryThroughput/shards=1 >= 1.0 ops/s
//
// The directive names two benchmarks (GOMAXPROCS-stripped), a minimum
// quotient, and the metric to compare (ops/s or ns/op). Ratios are
// evaluated on the current run only; a directive whose benchmarks or
// metric are missing from the run fails the gate rather than silently
// passing. The quotient of two noisy measurements is noisy in both
// numerator and denominator, so the gate's tolerance shields ratios the
// same way it shields per-benchmark comparisons: a directive passes when
// the measured quotient is at least min·(1−tolerance).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. opsS is the custom ops/s metric
// reported by the throughput benchmarks (0 when absent).
type result struct {
	name string
	nsOp float64
	opsS float64
}

// ratio is one "# ratio:" invariant parsed from the baseline file: the
// current run must satisfy metric(a)/metric(b) >= min.
type ratio struct {
	a, b   string
	min    float64
	metric string // "ops/s" or "ns/op"
}

// metricOf returns r's value for the given metric and whether the run
// reported it.
func (r result) metricOf(metric string) (float64, bool) {
	switch metric {
	case "ns/op":
		return r.nsOp, r.nsOp > 0
	case "ops/s":
		return r.opsS, r.opsS > 0
	}
	return 0, false
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkOnlineSubmit-8   30000000   38.2 ns/op   0 B/op   0 allocs/op
//	BenchmarkServerThroughput/shards=4-8   12000   95012 ns/op
//
// Duplicate names (e.g. -count=N runs) keep the minimum ns/op — the
// least-noisy estimate of the code's true cost.
func parseBench(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ns, ops := -1.0, -1.0
		for i := 2; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "ns/op", "ops/s":
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad %s in %q", path, fields[i+1], sc.Text())
				}
				if fields[i+1] == "ns/op" {
					ns = v
				} else {
					ops = v
				}
			}
		}
		if ns < 0 {
			continue
		}
		name := stripProcs(fields[0])
		prev, seen := out[name]
		if !seen || ns < prev.nsOp {
			prev.name, prev.nsOp = name, ns
		}
		if ops > prev.opsS {
			prev.opsS = ops
		}
		out[name] = prev
	}
	return out, sc.Err()
}

// parseRatios extracts "# ratio:" directives from the baseline file.
// Grammar (whitespace-separated):
//
//	# ratio: <benchA> / <benchB> >= <min> <metric>
func parseRatios(path string) ([]ratio, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []ratio
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "# ratio:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "# ratio:"))
		bad := func() ([]ratio, error) {
			return nil, fmt.Errorf("%s: bad ratio directive %q (want \"<benchA> / <benchB> >= <min> <metric>\")", path, line)
		}
		if len(fields) != 6 || fields[1] != "/" || fields[3] != ">=" {
			return bad()
		}
		min, err := strconv.ParseFloat(fields[4], 64)
		if err != nil || min <= 0 {
			return bad()
		}
		metric := fields[5]
		if metric != "ops/s" && metric != "ns/op" {
			return bad()
		}
		out = append(out, ratio{a: stripProcs(fields[0]), b: stripProcs(fields[2]), min: min, metric: metric})
	}
	return out, sc.Err()
}

// gateRatios evaluates the ratio invariants against the current run and
// writes a report line each, returning descriptions of the failures. A
// missing benchmark or metric fails the directive: an invariant the run
// cannot check must not pass silently. The tolerance discounts the
// minimum (pass when quotient ≥ min·(1−tolerance)) — both sides of the
// quotient carry run-to-run noise, so a hard threshold would flap on
// invariants that hold at parity.
func gateRatios(w *strings.Builder, ratios []ratio, current map[string]result, tolerance float64) []string {
	var failed []string
	for _, r := range ratios {
		desc := fmt.Sprintf("%s / %s >= %g %s", r.a, r.b, r.min, r.metric)
		va, aok := current[r.a].metricOf(r.metric)
		vb, bok := current[r.b].metricOf(r.metric)
		if !aok || !bok {
			missing := r.a
			if aok {
				missing = r.b
			}
			fmt.Fprintf(w, "FAIL ratio %s: no %s for %s in current run\n", desc, r.metric, missing)
			failed = append(failed, desc)
			continue
		}
		got := va / vb
		verdict := "ok  "
		if got < r.min*(1-tolerance) {
			verdict = "FAIL"
			failed = append(failed, desc)
		}
		fmt.Fprintf(w, "%s ratio %s: %.1f / %.1f = %.2f (tolerance -%.0f%%)\n",
			verdict, desc, va, vb, got, 100*tolerance)
	}
	return failed
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name
// (the suffix after the last dash when it is all digits).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// gate compares current against baseline and writes a report line per
// benchmark. It returns the names that regressed past the tolerance.
func gate(w *strings.Builder, baseline, current map[string]result, tolerance float64) []string {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(w, "SKIP %-50s baseline %.1f ns/op, not in current run\n", name, base.nsOp)
			continue
		}
		delta := (cur.nsOp - base.nsOp) / base.nsOp
		verdict := "ok  "
		if delta > tolerance {
			verdict = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "%s %-50s %.1f -> %.1f ns/op (%+.1f%%, tolerance %+.0f%%)\n",
			verdict, name, base.nsOp, cur.nsOp, 100*delta, 100*tolerance)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "NEW  %-50s %.1f ns/op, not in baseline\n", name, current[name].nsOp)
	}
	return failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", ".github/bench-baseline.txt", "committed baseline `go test -bench` output")
		currentPath  = flag.String("current", "", "current `go test -bench` output to gate")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed ns/op regression fraction")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline, err := parseBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := parseBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *baselinePath)
		os.Exit(2)
	}
	ratios, err := parseRatios(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var report strings.Builder
	failed := gate(&report, baseline, current, *tolerance)
	ratioFailed := gateRatios(&report, ratios, current, *tolerance)
	fmt.Print(report.String())
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed past %.0f%%: %s\n",
			len(failed), 100**tolerance, strings.Join(failed, ", "))
	}
	if len(ratioFailed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d ratio invariant(s) violated: %s\n",
			len(ratioFailed), strings.Join(ratioFailed, "; "))
	}
	if len(failed)+len(ratioFailed) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance, %d ratio invariant(s) hold\n",
		len(baseline), len(ratios))
}
