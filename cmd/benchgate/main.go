// Command benchgate compares a `go test -bench` run against a committed
// baseline and fails when a benchmark regressed past a tolerance — the
// enforcement half of the CI benchmark gate (benchstat renders the same
// comparison for humans; benchgate needs only the standard library, so
// the gate is reproducible locally with no extra tools).
//
// Usage:
//
//	go test ./internal/retrieval -bench BenchmarkOnlineSubmit -benchtime 2s | tee bench-current.txt
//	benchgate -baseline .github/bench-baseline.txt -current bench-current.txt -tolerance 0.10
//
// Benchmarks are matched by name with the trailing -GOMAXPROCS stripped,
// so baselines survive runner core-count changes. Benchmarks present in
// only one file are reported but do not fail the gate; regressions in
// ns/op beyond the tolerance do. Exit status: 0 pass, 1 regression, 2
// usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	name string
	nsOp float64
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkOnlineSubmit-8   30000000   38.2 ns/op   0 B/op   0 allocs/op
//	BenchmarkServerThroughput/shards=4-8   12000   95012 ns/op
//
// Duplicate names (e.g. -count=N runs) keep the minimum ns/op — the
// least-noisy estimate of the code's true cost.
func parseBench(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ns := -1.0
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op in %q", path, sc.Text())
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		name := stripProcs(fields[0])
		if prev, ok := out[name]; !ok || ns < prev.nsOp {
			out[name] = result{name: name, nsOp: ns}
		}
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name
// (the suffix after the last dash when it is all digits).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// gate compares current against baseline and writes a report line per
// benchmark. It returns the names that regressed past the tolerance.
func gate(w *strings.Builder, baseline, current map[string]result, tolerance float64) []string {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(w, "SKIP %-50s baseline %.1f ns/op, not in current run\n", name, base.nsOp)
			continue
		}
		delta := (cur.nsOp - base.nsOp) / base.nsOp
		verdict := "ok  "
		if delta > tolerance {
			verdict = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "%s %-50s %.1f -> %.1f ns/op (%+.1f%%, tolerance %+.0f%%)\n",
			verdict, name, base.nsOp, cur.nsOp, 100*delta, 100*tolerance)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "NEW  %-50s %.1f ns/op, not in baseline\n", name, current[name].nsOp)
	}
	return failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", ".github/bench-baseline.txt", "committed baseline `go test -bench` output")
		currentPath  = flag.String("current", "", "current `go test -bench` output to gate")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed ns/op regression fraction")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline, err := parseBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := parseBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *baselinePath)
		os.Exit(2)
	}
	var report strings.Builder
	failed := gate(&report, baseline, current, *tolerance)
	fmt.Print(report.String())
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed past %.0f%%: %s\n",
			len(failed), 100**tolerance, strings.Join(failed, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance\n", len(baseline))
}
