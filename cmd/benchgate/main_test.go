package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkOnlineSubmit-8   	30000000	        38.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkOnlineSubmit-8   	30000000	        37.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerThroughput/shards=4-16         	   12000	     95012 ns/op	          631182 ops/s
BenchmarkNoNsOp-8     10    things
PASS
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	if r := got["BenchmarkOnlineSubmit"]; r.nsOp != 37.9 {
		t.Errorf("duplicate runs should keep the minimum; got %.1f", r.nsOp)
	}
	if r := got["BenchmarkServerThroughput/shards=4"]; r.nsOp != 95012 {
		t.Errorf("sub-benchmark ns/op = %.1f, want 95012", r.nsOp)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX-16":           "BenchmarkX",
		"BenchmarkX":              "BenchmarkX",
		"BenchmarkX/k=4-8":        "BenchmarkX/k=4",
		"BenchmarkX/shards=1-256": "BenchmarkX/shards=1",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]result{
		"A": {name: "A", nsOp: 100},
		"B": {name: "B", nsOp: 100},
		"C": {name: "C", nsOp: 100},
	}
	current := map[string]result{
		"A": {name: "A", nsOp: 109}, // +9%: inside 10% tolerance
		"B": {name: "B", nsOp: 120}, // +20%: regression
		"D": {name: "D", nsOp: 50},  // new, ignored
		// C missing from current: skipped, not failed
	}
	var report strings.Builder
	failed := gate(&report, baseline, current, 0.10)
	if len(failed) != 1 || failed[0] != "B" {
		t.Fatalf("failed = %v, want [B]", failed)
	}
	out := report.String()
	for _, want := range []string{"ok   A", "FAIL B", "SKIP C", "NEW  D"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Improvements never fail.
	current["B"] = result{name: "B", nsOp: 10}
	var r2 strings.Builder
	if failed := gate(&r2, baseline, current, 0.10); len(failed) != 0 {
		t.Errorf("improvement flagged as regression: %v", failed)
	}
}
