package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkOnlineSubmit-8   	30000000	        38.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkOnlineSubmit-8   	30000000	        37.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerThroughput/shards=4-16         	   12000	     95012 ns/op	          631182 ops/s
BenchmarkNoNsOp-8     10    things
PASS
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	if r := got["BenchmarkOnlineSubmit"]; r.nsOp != 37.9 {
		t.Errorf("duplicate runs should keep the minimum; got %.1f", r.nsOp)
	}
	if r := got["BenchmarkServerThroughput/shards=4"]; r.nsOp != 95012 {
		t.Errorf("sub-benchmark ns/op = %.1f, want 95012", r.nsOp)
	}
	if r := got["BenchmarkServerThroughput/shards=4"]; r.opsS != 631182 {
		t.Errorf("sub-benchmark ops/s = %.1f, want 631182", r.opsS)
	}
	if r := got["BenchmarkOnlineSubmit"]; r.opsS != 0 {
		t.Errorf("ops/s = %.1f for a benchmark without the metric, want 0", r.opsS)
	}
}

func TestParseBenchOpsDuplicates(t *testing.T) {
	path := writeTemp(t, "bench.txt", `
BenchmarkT/shards=1-8   30000   302.0 ns/op   3311543 ops/s
BenchmarkT/shards=1-8   30000   310.0 ns/op   3350000 ops/s
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	r := got["BenchmarkT/shards=1"]
	if r.nsOp != 302.0 {
		t.Errorf("duplicate ns/op = %.1f, want minimum 302.0", r.nsOp)
	}
	if r.opsS != 3350000 {
		t.Errorf("duplicate ops/s = %.1f, want maximum 3350000", r.opsS)
	}
}

func TestParseRatios(t *testing.T) {
	path := writeTemp(t, "baseline.txt", `
# Committed baseline.
# ratio: BenchmarkA/x-8 / BenchmarkB-8 >= 1.5 ops/s
# ratio: BenchmarkC / BenchmarkD >= 3.0 ns/op
BenchmarkA/x-8  10  100 ns/op
`)
	rs, err := parseRatios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d ratios, want 2", len(rs))
	}
	want := ratio{a: "BenchmarkA/x", b: "BenchmarkB", min: 1.5, metric: "ops/s"}
	if rs[0] != want {
		t.Errorf("ratio[0] = %+v, want %+v (GOMAXPROCS suffix stripped)", rs[0], want)
	}
	for _, bad := range []string{
		"# ratio: A / B > 1.0 ops/s",
		"# ratio: A B >= 1.0 ops/s",
		"# ratio: A / B >= 0 ops/s",
		"# ratio: A / B >= 1.0 MB/s",
		"# ratio: A / B >= ops/s",
	} {
		p := writeTemp(t, "bad.txt", bad+"\n")
		if _, err := parseRatios(p); err == nil {
			t.Errorf("parseRatios accepted %q, want error", bad)
		}
	}
}

func TestGateRatios(t *testing.T) {
	current := map[string]result{
		"Bin1":  {name: "Bin1", nsOp: 302, opsS: 3300000},
		"Bin4":  {name: "Bin4", nsOp: 280, opsS: 3500000},
		"Text1": {name: "Text1", nsOp: 1176, opsS: 850000},
	}
	cases := []struct {
		r    ratio
		fail bool
	}{
		{ratio{a: "Bin4", b: "Bin1", min: 1.0, metric: "ops/s"}, false},
		{ratio{a: "Bin1", b: "Text1", min: 3.0, metric: "ops/s"}, false},
		{ratio{a: "Bin1", b: "Bin4", min: 1.2, metric: "ops/s"}, true},   // 0.94 < 1.2·0.9
		{ratio{a: "Bin1", b: "Bin4", min: 1.0, metric: "ops/s"}, false},  // 0.94 ≥ 1.0·0.9: inside tolerance
		{ratio{a: "Bin1", b: "Gone", min: 1.0, metric: "ops/s"}, true},   // missing benchmark must fail
		{ratio{a: "Bin1", b: "Text1", min: 1.0, metric: "MB/s"}, true},   // unknown metric must fail
		{ratio{a: "Text1", b: "Bin4", min: 1.0, metric: "ops/s"}, true},  // 0.24 < 1
		{ratio{a: "Text1", b: "Bin1", min: 3.0, metric: "ns/op"}, false}, // 1176/302 ≥ 3
	}
	for _, c := range cases {
		var w strings.Builder
		failed := gateRatios(&w, []ratio{c.r}, current, 0.10)
		if (len(failed) > 0) != c.fail {
			t.Errorf("ratio %+v: failed=%v, want fail=%v\n%s", c.r, failed, c.fail, w.String())
		}
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX-16":           "BenchmarkX",
		"BenchmarkX":              "BenchmarkX",
		"BenchmarkX/k=4-8":        "BenchmarkX/k=4",
		"BenchmarkX/shards=1-256": "BenchmarkX/shards=1",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]result{
		"A": {name: "A", nsOp: 100},
		"B": {name: "B", nsOp: 100},
		"C": {name: "C", nsOp: 100},
	}
	current := map[string]result{
		"A": {name: "A", nsOp: 109}, // +9%: inside 10% tolerance
		"B": {name: "B", nsOp: 120}, // +20%: regression
		"D": {name: "D", nsOp: 50},  // new, ignored
		// C missing from current: skipped, not failed
	}
	var report strings.Builder
	failed := gate(&report, baseline, current, 0.10)
	if len(failed) != 1 || failed[0] != "B" {
		t.Fatalf("failed = %v, want [B]", failed)
	}
	out := report.String()
	for _, want := range []string{"ok   A", "FAIL B", "SKIP C", "NEW  D"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Improvements never fail.
	current["B"] = result{name: "B", nsOp: 10}
	var r2 strings.Builder
	if failed := gate(&r2, baseline, current, 0.10); len(failed) != 0 {
		t.Errorf("improvement flagged as regression: %v", failed)
	}
}
