// Command qosd serves a replication-based QoS flash array over TCP — the
// storage-cloud deployment the paper motivates. Clients submit block reads
// with a line protocol (see internal/qosnet) and receive admission
// outcomes and guaranteed response times. Requests from concurrent
// connections flow through the lock-free admission pipeline
// (core.ConcurrentSystem); see the qosnet package docs for the concurrency
// model and robustness controls.
//
// Usage:
//
//	qosd -addr :7331 -n 9 -c 3 -m 1 -max-conns 256 -read-timeout 5m -drain-timeout 5s
//	printf 'READ 42\nSTATS\nQUIT\n' | nc localhost 7331
//
// With -shards K the block space is hash-partitioned across K independent
// (n,c,1) arrays (K·n devices, K·S guaranteed admissions per interval);
// the protocol is unchanged and device ids become global (see
// internal/shard).
//
// A device-health monitor is attached by default: the FAIL/RECOVER/HEALTH
// admin verbs manage device availability, admission degrades to S' when
// devices are out of service, and a token-bucket rebuild scheduler
// re-replicates in the background. Tune with -suspect-after, -fail-after
// and -rebuild-rate, or disable with -no-health.
//
// Repeatable -tenant name:reserve:limit:weight flags install a boot-time
// multi-tenant policy: tagged submissions run the mClock-style gate in
// front of the S-bound (reserved window slots, per-window arrival limits,
// weighted surplus), and the TENANT SET/GET/DEL verbs reconfigure the
// policy live without pausing admission. Untagged traffic is never gated.
//
// With -backend pack -data-dir DIR the server stores real bytes: one
// append-only volume file per device under DIR (see internal/pack), the
// binary GET/PUT verbs serve payloads with QoS admission in front, media
// faults feed the health monitor, and the rebuild scheduler copies real
// payloads during reprotect/resilver. -backend mem|flashsim keep the
// timing-only simulators (the default).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/pack"
	"flashqos/internal/qosnet"
	"flashqos/internal/sampling"
	"flashqos/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7331", "listen address")
		n       = flag.Int("n", 9, "flash modules")
		c       = flag.Int("c", 3, "replicas per bucket")
		m       = flag.Int("m", 1, "access guarantee target M")
		shards  = flag.Int("shards", 1, "independent (n,c,1) arrays to hash-partition blocks across")
		epsilon = flag.Float64("epsilon", 0, "statistical QoS threshold (0 = deterministic)")
		table   = flag.String("table", "", "cached probability table (from qostable) for statistical QoS")

		proto        = flag.String("proto", "both", "accepted wire protocols: text, binary, or both (auto-detect per connection)")
		maxConns     = flag.Int("max-conns", 256, "max concurrent connections (0 = unlimited); excess get ERR server busy")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-line read deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain before force-closing connections")
		maxLine      = flag.Int("max-line", qosnet.DefaultMaxLineBytes, "max request-line length in bytes")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

		noHealth     = flag.Bool("no-health", false, "disable the device-health monitor (FAIL/RECOVER/HEALTH answer ERR)")
		suspectAfter = flag.Int("suspect-after", 3, "consecutive errors before a device turns Suspect")
		failAfter    = flag.Int("fail-after", 10, "consecutive errors before a Suspect device turns Failed")
		rebuildRate  = flag.Float64("rebuild-rate", 200, "background rebuild rate cap, bucket copies per second (0 = no rebuild; RECOVER promotes immediately)")

		backend       = flag.String("backend", "flashsim", "storage backend: flashsim, mem, or pack (real bytes; needs -data-dir)")
		dataDir       = flag.String("data-dir", "", "volume directory for -backend pack")
		packSync      = flag.Duration("pack-sync", pack.DefaultSyncInterval, "pack group-commit fsync interval")
		packSyncBytes = flag.Int("pack-sync-bytes", pack.DefaultSyncBytes, "pack unsynced-byte threshold that kicks an early fsync")
	)
	var tenants tenantFlags
	flag.Var(&tenants, "tenant",
		"boot-time tenant policy as name:reserve:limit:weight (repeatable; limit 0 = unlimited; same live policy as TENANT SET)")
	flag.Parse()

	cfg := core.Config{N: *n, C: *c, M: *m, Epsilon: *epsilon}
	var packBE *core.PackBackend
	switch *backend {
	case "flashsim":
		// Default backend; leave cfg.Backend nil.
	case "mem":
		cfg.Backend = core.MemBackend{}
	case "pack":
		if *dataDir == "" {
			log.Fatal("qosd: -backend pack requires -data-dir")
		}
		packBE = &core.PackBackend{
			Dir:  *dataDir,
			Opts: pack.Options{SyncInterval: *packSync, SyncBytes: *packSyncBytes},
		}
		cfg.Backend = packBE
	default:
		log.Fatalf("qosd: bad -backend %q (want flashsim, mem, or pack)", *backend)
	}
	if *table != "" {
		f, err := os.Open(*table)
		if err != nil {
			log.Fatal(err)
		}
		tab, err := sampling.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Table = tab
	}
	arr, err := shard.New(*shards, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(tenants) > 0 {
		// Boot-time policy; tenant indices follow flag order (first
		// -tenant is index 1). TENANT SET/DEL reconfigure it live.
		if err := arr.SetTenants(tenants); err != nil {
			log.Fatalf("qosd: -tenant: %v", err)
		}
	}
	var store *pack.Store
	if packBE != nil {
		store, err = packBE.Open(arr.Devices())
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
	}
	if !*noHealth {
		hcfg := health.Config{
			SuspectAfter: *suspectAfter,
			FailAfter:    *failAfter,
		}
		if store != nil {
			// Rebuild passes move the real payloads, not just the schedule.
			err = arr.NewHealthMonitorsWithCopy(*rebuildRate, hcfg, qosnet.RebuildCopy(arr, store))
		} else {
			err = arr.NewHealthMonitors(*rebuildRate, hcfg)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	var protoMode qosnet.Proto
	switch *proto {
	case "both":
		protoMode = qosnet.ProtoBoth
	case "text":
		protoMode = qosnet.ProtoText
	case "binary":
		protoMode = qosnet.ProtoBinary
	default:
		log.Fatalf("qosd: bad -proto %q (want text, binary, or both)", *proto)
	}
	opts := qosnet.Options{
		MaxConns:     *maxConns,
		ReadTimeout:  *readTimeout,
		MaxLineBytes: *maxLine,
		Proto:        protoMode,
	}
	if store != nil {
		opts.Store = store
	}
	srv := qosnet.NewServerSharded(arr, opts)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("qosd: pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("qosd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	healthMode := "off"
	if !*noHealth {
		healthMode = fmt.Sprintf("on (suspect-after=%d fail-after=%d rebuild-rate=%g/s)",
			*suspectAfter, *failAfter, *rebuildRate)
	}
	fmt.Printf("qosd: (%d,%d,1) design, M=%d, shards=%d, devices=%d, S=%d, epsilon=%g, backend %s, health %s, proto %s, listening on %s\n",
		*n, *c, *m, arr.Shards(), arr.Devices(), arr.S(), *epsilon, *backend, healthMode, *proto, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		<-sig
		fmt.Println("qosd: shutting down")
		drained <- srv.Shutdown(*drainTimeout)
	}()
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
	if err := <-drained; err != nil {
		fmt.Printf("qosd: %v\n", err)
	}
	if store != nil {
		// Flush the group-commit tail before announcing a clean exit.
		if err := store.Close(); err != nil {
			fmt.Printf("qosd: store close: %v\n", err)
		}
	}
	fmt.Println("qosd: bye")
}

// tenantFlags collects repeatable -tenant name:reserve:limit:weight
// declarations into a boot-time policy.
type tenantFlags []admission.TenantSpec

func (t *tenantFlags) String() string {
	parts := make([]string, len(*t))
	for i, s := range *t {
		parts[i] = fmt.Sprintf("%s:%d:%d:%g", s.Name, s.Reserve, s.Limit, s.Weight)
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	f := strings.Split(v, ":")
	if len(f) != 4 || f[0] == "" {
		return fmt.Errorf("want name:reserve:limit:weight, got %q", v)
	}
	reserve, err := strconv.Atoi(f[1])
	if err != nil {
		return fmt.Errorf("bad reserve %q: %v", f[1], err)
	}
	limit, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad limit %q: %v", f[2], err)
	}
	weight, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return fmt.Errorf("bad weight %q: %v", f[3], err)
	}
	*t = append(*t, admission.TenantSpec{Name: f[0], Reserve: reserve, Limit: limit, Weight: weight})
	return nil
}
