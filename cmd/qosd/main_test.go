package main

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flashqos/internal/qosnet"
)

// TestEndToEnd builds the qosd binary, starts it on an ephemeral port,
// drives READ/MAP/STATS/METRICS/QUIT through the qosnet client, then
// sends SIGINT and checks the shutdown drains cleanly with exit code 0.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the qosd binary")
	}
	bin := filepath.Join(t.TempDir(), "qosd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-max-conns", "8",
		"-read-timeout", "30s",
		"-drain-timeout", "3s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// First line announces the bound address; capture the rest for the
	// shutdown assertions.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("qosd produced no output: %v", sc.Err())
	}
	banner := sc.Text()
	i := strings.LastIndex(banner, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected banner %q", banner)
	}
	addr := strings.TrimSpace(banner[i+len("listening on "):])
	var rest bytes.Buffer
	var restWG sync.WaitGroup
	restWG.Add(1)
	go func() {
		defer restWG.Done()
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	c, err := qosnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Error("first READ rejected")
	}
	if res.Device < 0 || res.Device > 8 {
		t.Errorf("device %d out of range for the (9,3,1) design", res.Device)
	}
	db, devs, err := c.Map(42)
	if err != nil {
		t.Fatal(err)
	}
	if db != 42%36 || len(devs) != 3 {
		t.Errorf("MAP 42 = (%d, %v), want design block %d with 3 replicas", db, devs, 42%36)
	}
	reqs, _, rejected, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reqs != 1 || rejected != 0 {
		t.Errorf("STATS = %d requests / %d rejected, want 1 / 0", reqs, rejected)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flashqos_requests_total 1", "flashqos_admission_limit 5"} {
		if !strings.Contains(m, want) {
			t.Errorf("METRICS missing %q:\n%s", want, m)
		}
	}
	c.Close() // sends QUIT so the drain has nothing left to wait for

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait: Wait closes the pipe and would
	// race the scanner out of the final shutdown lines.
	waited := make(chan error, 1)
	go func() {
		restWG.Wait()
		waited <- cmd.Wait()
	}()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("qosd exited with %v, want clean exit", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("qosd did not exit after SIGINT")
	}
	out := rest.String()
	if !strings.Contains(out, "shutting down") {
		t.Errorf("shutdown message missing from output:\n%s", out)
	}
	if !strings.Contains(out, "qosd: bye") {
		t.Errorf("clean-drain farewell missing from output:\n%s", out)
	}
}

// TestEndToEndBusy checks the -max-conns backpressure from outside the
// process: with a cap of 1, a second concurrent connection is refused.
func TestEndToEndBusy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the qosd binary")
	}
	bin := filepath.Join(t.TempDir(), "qosd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-conns", "1", "-drain-timeout", "1s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
		}
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("qosd produced no output: %v", sc.Err())
	}
	banner := sc.Text()
	i := strings.LastIndex(banner, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected banner %q", banner)
	}
	addr := strings.TrimSpace(banner[i+len("listening on "):])
	go io.Copy(io.Discard, stdout)

	first, err := qosnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Read(1); err != nil {
		t.Fatal(err)
	}
	// Dial succeeds at the TCP level; the refusal arrives as an ERR line
	// pushed by the server before it closes the connection.
	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(second).ReadString('\n')
	if err != nil {
		t.Fatalf("refused connection: want ERR line, got %v", err)
	}
	if !strings.HasPrefix(line, "ERR server busy") {
		t.Errorf("over-capacity connection answered %q", line)
	}
}
