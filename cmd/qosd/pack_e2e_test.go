package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"flashqos/internal/pack"
	"flashqos/internal/qosnet"
)

// buildQosd compiles the daemon once per test into its own temp dir.
func buildQosd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qosd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startPackQosd launches qosd -backend pack on dir and returns the bound
// address plus the running command. Extra args append to the baseline.
func startPackQosd(t *testing.T, bin, dir string, extra ...string) (*exec.Cmd, string, io.ReadCloser) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-backend", "pack",
		"-data-dir", dir,
		"-pack-sync", "1ms",
		"-drain-timeout", "3s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatalf("qosd produced no output: %v", sc.Err())
	}
	banner := sc.Text()
	i := strings.LastIndex(banner, "listening on ")
	if i < 0 {
		cmd.Process.Kill()
		t.Fatalf("unexpected banner %q", banner)
	}
	if !strings.Contains(banner, "backend pack") {
		cmd.Process.Kill()
		t.Fatalf("banner does not announce the pack backend: %q", banner)
	}
	return cmd, strings.TrimSpace(banner[i+len("listening on "):]), stdout
}

func packPayload(block int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i)*17 + block*31 + 7)
	}
	return b
}

// stopClean SIGINTs the daemon and waits for a clean exit.
func stopClean(t *testing.T, cmd *exec.Cmd, stdout io.Reader) {
	t.Helper()
	var rest bytes.Buffer
	drained := make(chan struct{})
	go func() {
		io.Copy(&rest, stdout)
		close(drained)
	}()
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() {
		<-drained
		waited <- cmd.Wait()
	}()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("qosd exited with %v, want clean exit:\n%s", err, rest.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("qosd did not exit after SIGINT")
	}
	if !strings.Contains(rest.String(), "qosd: bye") {
		t.Fatalf("clean-drain farewell missing:\n%s", rest.String())
	}
}

// TestPackEndToEnd is the acceptance round-trip: qosd -backend pack
// serves PUT then GET of real bytes over the binary protocol with QoS
// admission in front, the payloads survive a clean restart, and the
// flashsim timing verbs keep working on the same server.
func TestPackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the qosd binary")
	}
	bin := buildQosd(t)
	dir := t.TempDir()
	cmd, addr, stdout := startPackQosd(t, bin, dir)
	defer cmd.Process.Kill()

	c, err := qosnet.DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for b := int64(0); b < n; b++ {
		r, err := c.Put(b, packPayload(b, 256+int(b)))
		if err != nil {
			t.Fatalf("put %d: %v", b, err)
		}
		if r.Rejected {
			t.Fatalf("put %d rejected under light load", b)
		}
	}
	for b := int64(0); b < n; b++ {
		r, data, err := c.Get(b)
		if err != nil {
			t.Fatalf("get %d: %v", b, err)
		}
		if r.Rejected || !bytes.Equal(data, packPayload(b, 256+int(b))) {
			t.Fatalf("get %d: rejected=%v, %d bytes", b, r.Rejected, len(data))
		}
	}
	// Admission still fronts the timing verbs, and a missing block errors.
	if res, err := c.Read(1); err != nil || res.Rejected {
		t.Fatalf("timing READ on pack backend: %+v, %v", res, err)
	}
	if _, _, err := c.Get(777_777); err == nil {
		t.Fatal("GET of a never-written block succeeded")
	}
	c.Close()
	stopClean(t, cmd, stdout)

	// Restart on the same directory: the index rebuild must serve every
	// payload byte-for-byte.
	cmd2, addr2, stdout2 := startPackQosd(t, bin, dir)
	defer cmd2.Process.Kill()
	c2, err := qosnet.DialBinary(addr2)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < n; b++ {
		_, data, err := c2.Get(b)
		if err != nil || !bytes.Equal(data, packPayload(b, 256+int(b))) {
			t.Fatalf("get %d after restart: %v", b, err)
		}
	}
	c2.Close()
	stopClean(t, cmd2, stdout2)
}

// TestPackCrashRecovery is the satellite crash e2e: kill -9 a pack-backed
// qosd mid-write, corrupt the volume tail like a torn append, restart,
// and assert (a) the index scan truncated the torn tail and (b) every
// PUT acknowledged before the kill round-trips byte-for-byte.
func TestPackCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the qosd binary")
	}
	bin := buildQosd(t)
	dir := t.TempDir()
	cmd, addr, stdout := startPackQosd(t, bin, dir)
	go io.Copy(io.Discard, stdout)
	defer cmd.Process.Kill()

	c, err := qosnet.DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: a settled prefix of acknowledged writes.
	const settled = 100
	for b := int64(0); b < settled; b++ {
		if _, err := c.Put(b, packPayload(b, 512)); err != nil {
			t.Fatalf("put %d: %v", b, err)
		}
	}
	// Phase 2: keep writing until the kill lands mid-stream; every block in
	// acked got a success response before the crash, nothing else did.
	acked := make([]int64, 0, 4096)
	for b := int64(0); b < settled; b++ {
		acked = append(acked, b)
	}
	var ackedMu sync.Mutex
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		for b := int64(settled); b < settled+100_000; b++ {
			res := <-c.PutAsync(b, packPayload(b, 512))
			if res.Err != nil {
				return // connection died under the kill
			}
			if res.Rejected {
				continue // admission pushed back; not acknowledged, not durable
			}
			ackedMu.Lock()
			acked = append(acked, b)
			ackedMu.Unlock()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	<-floodDone
	cmd.Wait()
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) <= settled {
		t.Fatalf("flood acknowledged nothing past the settled prefix (%d acked)", len(acked))
	}

	// Simulate a torn append the kill could have left: a needle header
	// claiming 4096 payload bytes with only a fragment behind it, plus
	// trailing garbage, appended to a real volume.
	vol := filepath.Join(dir, "vol-0000.pack")
	fi, err := os.Stat(vol)
	if err != nil {
		t.Fatal(err)
	}
	preSize := fi.Size()
	f, err := os.OpenFile(vol, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := pack.AppendNeedle(nil, 999_999, packPayload(999_999, 4096))[:pack.NeedleHeaderSize+100]
	torn = append(torn, []byte("garbage after the torn record")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: the index scan must drop the whole torn tail — our injected
	// garbage, plus any half-written needle the SIGKILL itself left — and
	// serve every acknowledged PUT byte-for-byte (a replica whose copy sat
	// in the lost tail is covered by a fsynced one elsewhere).
	cmd2, addr2, stdout2 := startPackQosd(t, bin, dir)
	defer cmd2.Process.Kill()
	fi2, err := os.Stat(vol)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() > preSize {
		t.Fatalf("vol-0000 is %d bytes after recovery, want torn tail truncated to at most %d", fi2.Size(), preSize)
	}
	c2, err := qosnet.DialBinary(addr2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range acked {
		_, data, err := c2.Get(b)
		if err != nil {
			t.Fatalf("acknowledged block %d lost after crash: %v", b, err)
		}
		if !bytes.Equal(data, packPayload(b, 512)) {
			t.Fatalf("acknowledged block %d corrupted after crash", b)
		}
	}
	if _, _, err := c2.Get(999_999); err == nil {
		t.Fatal("torn needle visible after recovery")
	}
	c2.Close()
	stopClean(t, cmd2, stdout2)
}
