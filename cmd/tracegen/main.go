// Command tracegen generates I/O traces in the repository's ASCII format:
// the paper's synthetic batch workload (§V-B1) or the Exchange-like /
// TPC-E-like server workloads (§V-B2 substitutes).
//
// Usage:
//
//	tracegen -kind synthetic -blocks 14 -interval 0.266 -requests 10000 > t.trace
//	tracegen -kind exchange -scale 0.1 -o exchange.trace
//	tracegen -kind tpce -seed 7 -o tpce.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flashqos/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "synthetic", "synthetic | exchange | tpce")
		out      = flag.String("o", "-", "output file ('-' = stdout)")
		seed     = flag.Int64("seed", 42, "RNG seed")
		scale    = flag.Float64("scale", 1.0, "server-trace scale factor")
		interval = flag.Float64("interval", 0.133, "synthetic: batch interval (ms)")
		blocks   = flag.Int("blocks", 5, "synthetic: blocks per interval")
		requests = flag.Int("requests", 10000, "synthetic: total requests")
		pool     = flag.Int("pool", 36, "synthetic: bucket pool size")
		stats    = flag.Bool("stats", false, "print per-interval statistics instead of records")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch *kind {
	case "synthetic":
		tr, err = trace.Synthetic(trace.SyntheticConfig{
			IntervalMS:        *interval,
			BlocksPerInterval: *blocks,
			TotalRequests:     *requests,
			PoolSize:          *pool,
			Seed:              *seed,
		})
	case "exchange":
		tr, err = trace.ExchangeLike(*seed, *scale)
	case "tpce":
		tr, err = trace.TPCELike(*seed, *scale)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *stats {
		for _, s := range tr.Stats() {
			fmt.Printf("%4d %9d total %10.1f avg/s %10.1f max/s\n", s.Interval, s.Total, s.AvgPerSec, s.MaxPerSec)
		}
		reads := 0
		blocks := map[int64]bool{}
		for _, r := range tr.Records {
			if !r.Write {
				reads++
			}
			blocks[r.Block] = true
		}
		fmt.Fprintf(os.Stderr, "%s: %d records (%d reads), %d distinct blocks, %d intervals\n",
			tr.Name, len(tr.Records), reads, len(blocks), tr.NumIntervals())
		return
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d records, %d intervals\n", tr.Name, len(tr.Records), tr.NumIntervals())
}
